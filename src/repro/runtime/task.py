"""Picklable window subproblems for cross-process execution.

A :class:`WindowTask` is the unit of work the execution engine ships
to a worker.  It comes in two flavors:

* **slice mode** (the DistOpt hot path): the task carries the
  window's *cell/net slice* — a minimal sub-``Design`` holding every
  instance the model build reads plus the movable cells' nets — and
  the build itself (:func:`~repro.core.formulation.build_window_model`
  + presolve) runs inside the worker, so model-construction cost
  parallelizes across the executor instead of serializing in the
  parent.  The worker returns the solve outcome *and* the decoded
  moves ``(cell, column, row, flipped)``; the parent re-applies them
  behind the local-objective guard, which is what keeps parallel runs
  byte-identical to serial ones.
* **model mode** (tools/tests): the task carries a fully-built
  :class:`~repro.milp.model.Model` verbatim and the worker only
  solves it.

Either way a :class:`SolverSpec` describes how to construct the MILP
backend on the far side of the process boundary, and only plain data
crosses back.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.milp.model import Model
from repro.milp.solution import Solution, SolveStatus

if TYPE_CHECKING:  # circular-import guard: formulation is heavy
    from repro.core.formulation import WindowProblem
    from repro.core.params import OptParams
    from repro.core.window import Window
    from repro.netlist.design import Design


@dataclass(frozen=True)
class SolverSpec:
    """Recipe for constructing a MILP backend inside a worker.

    Known backends (``highs``, ``branch_bound``) are rebuilt from
    their parameters; any other backend object is carried along
    verbatim via ``instance`` and must itself be picklable.
    """

    backend: str = "highs"
    time_limit: float | None = None
    mip_rel_gap: float = 0.0
    native_presolve: bool | None = None
    instance: object | None = None

    @classmethod
    def from_backend(cls, solver) -> "SolverSpec":
        """Capture a spec from an already-constructed backend."""
        from repro.milp.branch_bound import BranchBoundBackend
        from repro.milp.highs_backend import HighsBackend

        if isinstance(solver, HighsBackend):
            return cls(
                backend="highs",
                time_limit=solver.time_limit,
                mip_rel_gap=solver.mip_rel_gap,
                native_presolve=solver.native_presolve,
            )
        if isinstance(solver, BranchBoundBackend):
            return cls(
                backend="branch_bound",
                time_limit=getattr(solver, "time_limit", None),
                instance=solver,
            )
        return cls(backend=type(solver).__name__, instance=solver)

    def build(self):
        """Construct (or return) the backend this spec describes."""
        if self.instance is not None:
            return self.instance
        if self.backend == "highs":
            from repro.milp.highs_backend import HighsBackend

            return HighsBackend(
                time_limit=self.time_limit,
                mip_rel_gap=self.mip_rel_gap,
                native_presolve=self.native_presolve,
            )
        if self.backend == "branch_bound":
            from repro.milp.branch_bound import BranchBoundBackend

            return BranchBoundBackend(time_limit=self.time_limit)
        raise ValueError(f"unknown solver backend {self.backend!r}")


@dataclass
class WindowTaskResult:
    """What comes back from one window-solve attempt."""

    task_id: int
    solution: Solution | None = None
    solve_seconds: float = 0.0
    presolve_seconds: float = 0.0
    build_seconds: float = 0.0
    queue_seconds: float = 0.0
    attempts: int = 1
    timed_out: bool = False
    error: str = ""
    #: False when a slice-mode build found nothing optimizable (the
    #: window had no legal candidates); such windows are silently
    #: dropped by the caller, exactly like a parent-side build
    #: returning ``None`` used to be.
    built: bool = True
    #: slice mode: the built problem's touched-net names — the parent
    #: evaluates its local-objective guard over exactly these.
    nets: tuple[str, ...] = ()
    #: slice mode: the built problem's movable cell names (canonical
    #: build order), for snapshot/revert bookkeeping in the parent.
    movable: tuple[str, ...] = ()
    #: slice mode: decoded solution as ``(cell, column, row, flipped)``
    #: per movable cell; None when no usable solution came back.
    moves: tuple[tuple[str, int, int, bool], ...] | None = None
    #: slice mode: candidate dM1 pin pairs in the built model.
    num_pairs: int = 0
    #: slice mode: a solution came back but could not be decoded into
    #: moves (corrupt λ selection).  Deterministic — never retried.
    apply_error: str = ""
    #: finished span dicts synthesized in the worker when the task
    #: carried a trace context; the submitting side absorbs them in
    #: canonical task order (see :mod:`repro.obs.trace`).
    spans: tuple[dict, ...] = ()
    #: the scheduler ran this task inline after the executor refused
    #: it (broken pool) — graceful serial degradation, counted in
    #: telemetry as ``repro_run_degradations_total``.
    degraded: bool = False
    #: span dicts from earlier failed attempts of the same task, so a
    #: retried-then-recovered window still shows its ``error:`` spans
    #: in the trace.
    retry_spans: tuple[dict, ...] = ()

    @property
    def ok(self) -> bool:
        """True when a usable (optimal/feasible) solution came back."""
        return (
            not self.error
            and self.solution is not None
            and self.solution.status.has_solution
        )


@dataclass(frozen=True)
class WindowTask:
    """Self-contained, picklable window subproblem.

    Attributes:
        task_id: canonical (submission-order) id; solutions are applied
            in ascending ``task_id`` order regardless of completion
            order, which is what makes parallel runs deterministic.
        ix/iy: window grid coordinates (for telemetry/debugging).
        family: independent-family index the window belongs to.
        solver: backend recipe used by the worker.
        model: a pre-built window MILP (model mode); ``None`` selects
            slice mode, where ``design``/``window``/``params`` +
            ``lx``/``ly``/``allow_flip`` describe the build to run
            inside the worker.
        design: slice mode — the window's cell/net slice (see
            :func:`repro.core.formulation.window_slice`).
        window: slice mode — the window to build.
        params: slice mode — objective weights for the build.
        lx/ly: slice mode — perturbation range (sites/rows).
        allow_flip: slice mode — enable the flip degree of freedom.
        nets: names of the window's touched nets (model-mode metadata;
            slice mode reports them from the worker-side build).
        num_movable: movable cell count (model-mode metadata).
        num_pairs: candidate dM1 pin pairs (model-mode metadata).
        presolve: run :func:`repro.milp.presolve.presolve` on the
            model inside the worker (and lift the solution back), so
            the reduction cost parallelizes with the solves.
        trace: ``(trace_id, parent_span_id)`` shipped by the
            submitting pass when tracing is on; the worker then
            synthesizes window/build/presolve/solve span dicts from
            the timings it already measures and returns them in
            ``WindowTaskResult.spans``.  ``None`` (tracing off) adds
            zero work to the hot path.
        chaos: armed fault directive ``(site, action, seconds)`` set
            by the scheduler when a fault plan targets this task (see
            :mod:`repro.chaos.inject`); ``None`` — the default and
            the only production value — costs one ``is None`` test.
    """

    task_id: int
    ix: int
    iy: int
    family: int
    solver: SolverSpec
    model: Model | None = None
    design: "Design | None" = None
    window: "Window | None" = None
    params: "OptParams | None" = None
    lx: int = 0
    ly: int = 0
    allow_flip: bool = False
    nets: tuple[str, ...] = ()
    num_movable: int = 0
    num_pairs: int = 0
    presolve: bool = True
    trace: tuple[str, str | None] | None = None
    chaos: tuple | None = None

    @classmethod
    def from_problem(
        cls,
        problem: "WindowProblem",
        *,
        task_id: int,
        family: int,
        solver: SolverSpec,
        presolve: bool = True,
        trace: tuple[str, str | None] | None = None,
    ) -> "WindowTask":
        """Model-mode task from an already-built window problem."""
        return cls(
            task_id=task_id,
            ix=problem.window.ix,
            iy=problem.window.iy,
            family=family,
            solver=solver,
            model=problem.model,
            nets=tuple(problem.nets),
            num_movable=len(problem.movable),
            num_pairs=problem.num_pairs,
            presolve=presolve,
            trace=trace,
        )

    @classmethod
    def from_slice(
        cls,
        design: "Design",
        window: "Window",
        params: "OptParams",
        *,
        task_id: int,
        family: int,
        solver: SolverSpec,
        lx: int,
        ly: int,
        allow_flip: bool,
        presolve: bool = True,
        trace: tuple[str, str | None] | None = None,
    ) -> "WindowTask":
        """Slice-mode task: the worker builds, presolves, and solves."""
        return cls(
            task_id=task_id,
            ix=window.ix,
            iy=window.iy,
            family=family,
            solver=solver,
            design=design,
            window=window,
            params=params,
            lx=lx,
            ly=ly,
            allow_flip=allow_flip,
            presolve=presolve,
            trace=trace,
        )

    def run(self) -> WindowTaskResult:
        """Execute the task; when a trace context rides along, attach
        synthesized span dicts to the result (see :meth:`_make_spans`)."""
        if self.chaos is not None:
            from repro.chaos.inject import maybe_crash_worker

            maybe_crash_worker(self.chaos)
        if self.trace is None:
            result = self._run()
            if self.chaos is not None:
                result = self._fault_result(result)
            return result
        started_at = time.time()
        c0 = time.thread_time()
        result = self._run()
        # Result faults apply before span synthesis so a lost result
        # still leaves an ``error:solve`` span in the trace.
        if self.chaos is not None:
            result = self._fault_result(result)
        result.spans = self._make_spans(
            result, started_at, time.thread_time() - c0
        )
        return result

    def _fault_result(self, result: WindowTaskResult) -> WindowTaskResult:
        """Apply an armed ``runtime.result`` directive to the outcome."""
        site, action, _seconds = self.chaos
        if site != "runtime.result":
            return result
        if action == "lost":
            return WindowTaskResult(
                task_id=self.task_id,
                error="chaos: result lost in transit",
            )
        if action == "poison":
            from repro.chaos.inject import PoisonPill

            result.solution = PoisonPill()
        return result

    def _make_spans(
        self,
        result: WindowTaskResult,
        started_at: float,
        cpu_seconds: float,
    ) -> tuple[dict, ...]:
        """Synthesize the window span tree from measured timings.

        Live span bookkeeping is deliberately kept out of the solve
        loop; the worker already times build/presolve/solve, so span
        records are minted after the fact — free when tracing is off,
        near-free when on.  Child-span inclusion depends only on task
        content and outcome (never on the executor), which keeps the
        tree shape identical across serial/thread/process runs.
        """
        from repro.obs.trace import make_span_dict, new_id

        trace_id, parent_id = self.trace
        window_id = new_id()
        status = "ok"
        if result.error:
            status = "error:solve"
        elif result.apply_error:
            status = "error:apply"
        window_span = make_span_dict(
            "window",
            trace_id=trace_id,
            parent_id=parent_id,
            started_at=started_at,
            wall_seconds=time.time() - started_at,
            cpu_seconds=cpu_seconds,
            span_id=window_id,
            attrs={
                "task_id": self.task_id,
                "ix": self.ix,
                "iy": self.iy,
                "family": self.family,
            },
        )
        window_span["status"] = status
        spans = [window_span]
        cursor = started_at
        if self.model is None:
            spans.append(
                make_span_dict(
                    "build",
                    trace_id=trace_id,
                    parent_id=window_id,
                    started_at=cursor,
                    wall_seconds=result.build_seconds,
                )
            )
            cursor += result.build_seconds
        if result.built and self.presolve:
            spans.append(
                make_span_dict(
                    "presolve",
                    trace_id=trace_id,
                    parent_id=window_id,
                    started_at=cursor,
                    wall_seconds=result.presolve_seconds,
                )
            )
            cursor += result.presolve_seconds
        if result.built:
            spans.append(
                make_span_dict(
                    "solve",
                    trace_id=trace_id,
                    parent_id=window_id,
                    started_at=cursor,
                    wall_seconds=result.solve_seconds,
                    attrs={"num_pairs": result.num_pairs},
                )
            )
        return tuple(spans)

    def _run(self) -> WindowTaskResult:
        """Execute one build+solve attempt; never raises.

        Runs inside the worker (process, thread, or inline for the
        serial executor).  Solver exceptions and ``ERROR`` statuses are
        folded into ``WindowTaskResult.error`` so the scheduler can
        decide whether to retry.  Solutions of a presolved model are
        lifted back to the original variable space before they cross
        the boundary — the parent only ever sees original indices.
        """
        started = time.perf_counter()
        build_seconds = 0.0
        presolve_seconds = 0.0
        built = self.model is not None
        nets = self.nets
        movable: tuple[str, ...] = ()
        num_pairs = self.num_pairs
        problem = None
        try:
            if self.chaos is not None:
                from repro.chaos.inject import maybe_raise_worker

                maybe_raise_worker(self.chaos)
            backend = self.solver.build()
            model = self.model
            if model is None:
                from repro.core.formulation import build_window_model

                t0 = time.perf_counter()
                problem = build_window_model(
                    self.design,
                    self.window,
                    self.params,
                    lx=self.lx,
                    ly=self.ly,
                    allow_flip=self.allow_flip,
                )
                build_seconds = time.perf_counter() - t0
                if problem is None:
                    return WindowTaskResult(
                        task_id=self.task_id,
                        build_seconds=build_seconds,
                        built=False,
                    )
                built = True
                model = problem.model
                nets = tuple(problem.nets)
                movable = tuple(problem.movable)
                num_pairs = problem.num_pairs
            reduction = None
            if self.presolve:
                from repro.milp.presolve import presolve as _presolve

                t0 = time.perf_counter()
                reduction = _presolve(model)
                presolve_seconds = time.perf_counter() - t0
                model = reduction.model
            solution = backend.solve(model)
            if reduction is not None:
                solution = reduction.lift(solution)
            if self.chaos is not None:
                from repro.chaos.inject import fault_solution

                solution = fault_solution(self.chaos, solution)
        except Exception as exc:  # noqa: BLE001 — worker boundary
            overhead = build_seconds + presolve_seconds
            return WindowTaskResult(
                task_id=self.task_id,
                solve_seconds=max(
                    0.0, time.perf_counter() - started - overhead
                ),
                build_seconds=build_seconds,
                presolve_seconds=presolve_seconds,
                built=built,
                nets=nets,
                movable=movable,
                num_pairs=num_pairs,
                error=f"{type(exc).__name__}: {exc}",
            )
        elapsed = (
            time.perf_counter() - started
            - build_seconds - presolve_seconds
        )
        error = ""
        timed_out = False
        if solution.status is SolveStatus.ERROR:
            error = solution.message or "solver returned ERROR"
            # A solve that exhausted the backend's own time limit
            # without an incumbent is a timeout, not a transient
            # failure — retrying it would just burn the budget again.
            timed_out = "time limit" in error.lower()
        elif problem is not None and solution.status in (
            SolveStatus.INFEASIBLE,
            SolveStatus.UNBOUNDED,
        ):
            # Window models always admit the identity assignment, so
            # an infeasible/unbounded verdict in slice mode is a
            # solver fault, not a property of the problem — surface
            # it as a retryable error instead of silently dropping
            # the window.
            error = (
                f"solver returned {solution.status.value} for a "
                f"window model"
            )
        moves = None
        apply_error = ""
        if (
            problem is not None
            and not error
            and solution.status.has_solution
        ):
            from repro.core.formulation import solution_moves

            try:
                moves = solution_moves(problem, solution)
            except ValueError as exc:
                apply_error = str(exc)
        return WindowTaskResult(
            task_id=self.task_id,
            solution=solution,
            solve_seconds=elapsed,
            presolve_seconds=presolve_seconds,
            build_seconds=build_seconds,
            timed_out=timed_out,
            error=error,
            built=built,
            nets=nets,
            movable=movable,
            moves=moves,
            num_pairs=num_pairs,
            apply_error=apply_error,
        )
