"""Interchangeable execution backends for window solves.

Three executors share one interface — ``submit(task) -> Future``:

* :class:`SerialExecutor` — solves inline in the calling process;
  the default, and the right choice on 1-core CI machines.
* :class:`ThreadExecutor` — a thread pool; useful for MILP backends
  that release the GIL during the native solve (HiGHS does for the
  bulk of its work inside ``scipy.optimize.milp``).
* :class:`MultiprocessExecutor` — a process pool; tasks and results
  cross the boundary via pickle (see :mod:`repro.runtime.task`).

Executors only *run* tasks; dispatch order, timeouts, and retries are
the scheduler's job (:mod:`repro.runtime.scheduler`).
"""

from __future__ import annotations

import os
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)

from repro.runtime.task import WindowTask, WindowTaskResult

EXECUTOR_KINDS = ("serial", "thread", "process", "auto")


def _run_task(task: WindowTask) -> WindowTaskResult:
    """Module-level worker entry point (must be picklable)."""
    return task.run()


class Executor:
    """Common interface: ``submit`` one task, get a ``Future`` back."""

    name: str = "base"

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))

    def submit(self, task: WindowTask) -> Future:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources without waiting; idempotent."""

    def drain(self) -> None:
        """Graceful teardown: let in-flight tasks finish, discard
        queued work, and join every worker before returning.

        This is the SIGTERM/SIGINT path — after a drain no worker
        thread or process is left behind, so the owning process can
        exit nonzero without orphaning children.  Idempotent.
        """
        self.close()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        # Context exit drains rather than closes: on the normal path
        # all tasks are already done (drain == close); on an abort
        # (cooperative cancel / SIGTERM between passes) in-flight
        # solves finish and workers are joined, never orphaned.
        self.drain()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialExecutor(Executor):
    """Runs each task inline at submit time (current/legacy behavior).

    Per-task timeouts cannot preempt an inline solve — bounding solve
    time is the MILP backend's own ``time_limit``'s job here.
    """

    name = "serial"

    def __init__(self) -> None:
        super().__init__(jobs=1)

    def submit(self, task: WindowTask) -> Future:
        future: Future = Future()
        try:
            future.set_result(_run_task(task))
        except Exception as exc:  # noqa: BLE001 — run() should not raise
            future.set_exception(exc)
        return future


class ThreadExecutor(Executor):
    """Thread-pool executor for GIL-releasing solver backends."""

    name = "thread"

    def __init__(self, jobs: int = 2) -> None:
        super().__init__(jobs=jobs)
        self._pool = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-solve"
        )

    def submit(self, task: WindowTask) -> Future:
        return self._pool.submit(_run_task, task)

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)

    def drain(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


class MultiprocessExecutor(Executor):
    """Process-pool executor; tasks/results cross via pickle."""

    name = "process"

    def __init__(self, jobs: int = 2) -> None:
        super().__init__(jobs=jobs)
        self._pool = ProcessPoolExecutor(max_workers=self.jobs)

    def submit(self, task: WindowTask) -> Future:
        return self._pool.submit(_run_task, task)

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)

    def drain(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


def make_executor(kind: str = "auto", jobs: int = 1) -> Executor:
    """Build an executor by name.

    ``auto`` picks :class:`SerialExecutor` for ``jobs <= 1`` and
    :class:`MultiprocessExecutor` otherwise — process isolation is the
    safe default because every MILP backend benefits, GIL or not.
    """
    kind = (kind or "auto").lower()
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor {kind!r}; expected one of {EXECUTOR_KINDS}"
        )
    if kind == "auto":
        kind = "serial" if jobs <= 1 else "process"
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(jobs=jobs)
    return MultiprocessExecutor(jobs=jobs)


def available_cores() -> int:
    """Usable CPU count (cgroup-affinity aware where possible)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1
