"""Family-by-family dispatch with timeouts, retries, degradation.

DistOpt hands the scheduler one independent family at a time; the
scheduler fans its windows out over the executor and collects results
keyed by ``task_id`` so the caller can apply them in canonical order.

Failure policy (graceful degradation — a bad window never aborts the
pass):

* solver failure (worker exception or ``ERROR`` status) — retried up
  to ``max_retries`` extra attempts, then recorded as failed;
* per-task timeout — recorded as timed out, never retried (it would
  almost certainly time out again) and its eventual result discarded;
* executor breakdown (e.g. a killed process pool) — remaining tasks
  are run inline in the scheduler thread (serial fallback), marked
  ``degraded`` so telemetry can count the fallback.

When a :class:`~repro.chaos.inject.ChaosController` is attached, the
scheduler *arms* worker/solver faults here — in the single-threaded
submit loop — and ships the directive on the task itself, so fault
placement is deterministic under any executor.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

from repro.runtime.executors import Executor, _run_task
from repro.runtime.task import WindowTask, WindowTaskResult

from repro.log import subsystem_logger

logger = subsystem_logger("repro.runtime")


@dataclass(frozen=True)
class ScheduleConfig:
    """Dispatch policy knobs.

    Attributes:
        task_timeout: wall-clock budget per solve attempt, measured
            from submission (None = wait forever).  This is a safety
            net *above* the MILP backend's own time limit; it only
            preempts on pool executors (the serial executor solves
            inline at submit time).
        max_retries: extra attempts after a solver failure.
    """

    task_timeout: float | None = None
    max_retries: int = 1

    @classmethod
    def for_time_limit(
        cls, time_limit: float | None
    ) -> "ScheduleConfig":
        """Default policy for a given per-window solver time limit:
        generous enough to never fire on a healthy solve (limit x4
        plus model-transfer slack), tight enough to unstick a hung
        worker."""
        if time_limit is None:
            return cls(task_timeout=None)
        return cls(task_timeout=4.0 * time_limit + 30.0)


class FamilyScheduler:
    """Dispatches one window family at a time over an executor."""

    def __init__(
        self,
        executor: Executor,
        config: ScheduleConfig | None = None,
        *,
        chaos=None,
    ) -> None:
        self.executor = executor
        self.config = config or ScheduleConfig()
        #: optional :class:`~repro.chaos.inject.ChaosController`;
        #: None (production default) adds one ``is None`` test per
        #: submit.
        self.chaos = chaos

    def run_family(
        self, tasks: list[WindowTask]
    ) -> dict[int, WindowTaskResult]:
        """Solve every task; returns results keyed by ``task_id``.

        Never raises: every task gets a result, failed or not.
        """
        results: dict[int, WindowTaskResult] = {}
        attempts = {task.task_id: 0 for task in tasks}
        stashed_spans: dict[int, list[dict]] = {}
        queue = list(tasks)
        while queue:
            in_flight: list[
                tuple[WindowTask, Future, float, bool]
            ] = []
            for task in queue:
                attempts[task.task_id] += 1
                armed = task
                if self.chaos is not None:
                    armed = self.chaos.arm_task(
                        task, attempt=attempts[task.task_id]
                    )
                degraded = False
                try:
                    future = self.executor.submit(armed)
                except Exception as exc:  # noqa: BLE001 — broken pool
                    # A broken pool re-raises its *first* worker's
                    # death at every subsequent submit; recording
                    # that as the task's permanent failure would pin
                    # one historical exception on windows that solve
                    # fine serially.  Degrade instead: run the task
                    # inline in the scheduler thread.
                    logger.warning(
                        "executor refused window (%d,%d) (%r) — "
                        "running inline",
                        task.ix, task.iy, exc,
                    )
                    future = self._inline_future(armed)
                    degraded = True
                in_flight.append(
                    (task, future, time.perf_counter(), degraded)
                )
            retry: list[WindowTask] = []
            for task, future, submitted, degraded in in_flight:
                result = self._collect(task, future, submitted)
                result.attempts = attempts[task.task_id]
                result.degraded = degraded
                if (
                    result.error
                    and not result.timed_out
                    and attempts[task.task_id]
                    <= self.config.max_retries
                ):
                    logger.warning(
                        "window (%d,%d) attempt %d failed: %s — "
                        "retrying",
                        task.ix, task.iy,
                        attempts[task.task_id], result.error,
                    )
                    if result.spans:
                        # Keep the failed attempt's error spans: the
                        # final result carries them so a recovered
                        # window still shows what went wrong.
                        stashed_spans.setdefault(
                            task.task_id, []
                        ).extend(result.spans)
                    retry.append(task)
                    continue
                if stashed_spans.get(task.task_id):
                    result.retry_spans = tuple(
                        stashed_spans[task.task_id]
                    )
                results[task.task_id] = result
            queue = retry
        return results

    @staticmethod
    def _inline_future(task: WindowTask) -> Future:
        """Serial-fallback attempt as an already-resolved future, so
        the collect/retry path treats it like any other."""
        future: Future = Future()
        try:
            future.set_result(_run_task(task))
        except BaseException as exc:  # noqa: BLE001 — worker boundary
            future.set_exception(exc)
        return future

    def _collect(
        self, task: WindowTask, future: Future, submitted: float
    ) -> WindowTaskResult:
        timeout = self.config.task_timeout
        remaining = None
        if timeout is not None:
            remaining = max(
                0.0, timeout - (time.perf_counter() - submitted)
            )
        try:
            result = future.result(timeout=remaining)
        except FutureTimeoutError:
            future.cancel()
            logger.warning(
                "window (%d,%d) timed out after %.1fs — skipped",
                task.ix, task.iy, timeout,
            )
            return WindowTaskResult(
                task_id=task.task_id,
                timed_out=True,
                error=f"timed out after {timeout:.1f}s",
            )
        except Exception as exc:  # noqa: BLE001 — broken pool etc.
            return WindowTaskResult(
                task_id=task.task_id, error=f"executor failure: {exc!r}"
            )
        wall = time.perf_counter() - submitted
        # Queue wait = submission-to-result wall minus the work the
        # worker actually did (slice-mode tasks build and presolve
        # inside the worker, so those belong to work, not waiting).
        worked = (
            result.build_seconds
            + result.presolve_seconds
            + result.solve_seconds
        )
        result.queue_seconds = max(0.0, wall - worked)
        return result
