"""Run telemetry: structured logs + per-window timing records.

Everything the execution engine observes funnels into a
:class:`RunTelemetry`: one :class:`WindowRecord` per built window
(build / queue-wait / solve breakdown, attempts, outcome) and one
aggregate entry per DistOpt pass.  ``summary()`` produces the JSON
document described in DESIGN.md §"Runtime & parallel execution";
``save()`` persists it next to the benchmark results.

The ``repro.runtime`` logger emits a DEBUG line per window and an
INFO line per pass so a long run can be watched live with
``logging.basicConfig(level=logging.INFO)``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.log import subsystem_logger
from repro.obs.metrics import MetricsRegistry

logger = subsystem_logger("repro.runtime")

#: JSON schema identifier written into every telemetry document.
#: v2 added the presolve share of each window's time split, the
#: ``cached`` window status, and the cross-pass window-cache section
#: (hits / misses / hit rate, per pass and run-wide).
#: v3 adds dirty-tracking visibility (the ``skipped_clean`` window
#: status and per-pass/summary ``windows_skipped_clean`` counts) and
#: moves ``build_seconds`` to the worker side: window models are now
#: built inside the executor workers, so each record's build time is
#: measured in the worker and ``modeled_parallel_seconds`` charges
#: the full per-window build+presolve+solve path.
#: v4 adds the observability spine (see DESIGN.md §12): a ``counters``
#: section rendered from the run's :class:`repro.obs.MetricsRegistry`
#: and a ``trace`` section linking the document to its span trace;
#: :func:`load_telemetry` still reads v3 documents, and
#: :meth:`RunTelemetry.from_spans` derives a telemetry document
#: directly from a recorded span tree.
TELEMETRY_SCHEMA = "repro.runtime.telemetry/v4"
#: Older schemas :func:`load_telemetry` accepts (normalizing to v4
#: shape: empty ``counters``, null ``trace``).
READABLE_SCHEMAS = (
    "repro.runtime.telemetry/v3",
    TELEMETRY_SCHEMA,
)


@dataclass
class WindowRecord:
    """Timing + outcome of one window through the engine."""

    pass_label: str
    family: int
    ix: int
    iy: int
    build_seconds: float = 0.0
    queue_seconds: float = 0.0
    presolve_seconds: float = 0.0
    solve_seconds: float = 0.0
    status: str = "skipped"  # applied | reverted | no_move |
    #                          no_solution | failed | timed_out |
    #                          skipped | cached | skipped_clean
    attempts: int = 0
    moved_cells: int = 0
    num_pairs: int = 0
    error: str = ""
    #: the window's final attempt ran inline after the executor
    #: refused it (serial fallback).
    degraded: bool = False


def modeled_parallel_seconds(records: list[WindowRecord]) -> float:
    """Parallel-machine model: per (pass, family) the slowest window
    *path* — build + presolve + solve, all of which run inside one
    worker — bounds the batch; families and passes run back-to-back.

    Before telemetry v3 models were built serially in the dispatching
    process and build time was excluded here; with worker-side builds
    the whole path parallelizes, so the whole path is charged.
    """
    slowest: dict[tuple[str, int], float] = {}
    for rec in records:
        key = (rec.pass_label, rec.family)
        path = (
            rec.build_seconds
            + rec.presolve_seconds
            + rec.solve_seconds
        )
        slowest[key] = max(slowest.get(key, 0.0), path)
    return sum(slowest.values())


@dataclass
class RunTelemetry:
    """Accumulates records across all DistOpt passes of one run."""

    executor: str = "serial"
    jobs: int = 1
    records: list[WindowRecord] = field(default_factory=list)
    passes: list[dict] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: trace id of the span trace covering this run, when traced.
    trace_id: str | None = None
    #: per-run metrics registry; every record also bumps it, and
    #: ``summary()`` renders it as the v4 ``counters`` section.
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def _metric_windows(self):
        return self.registry.counter(
            "repro_run_windows_total",
            "Windows processed by the engine, by outcome status.",
            ("status",),
        )

    def record_window(self, record: WindowRecord) -> None:
        self.records.append(record)
        self._metric_windows().inc(status=record.status)
        self.registry.histogram(
            "repro_run_window_solve_seconds",
            "Per-window solve time distribution.",
        ).observe(record.solve_seconds)
        # Recovery counters are created lazily so clean runs keep the
        # exact v4 counter set they had before the chaos tier.
        if record.attempts > 1:
            self.registry.counter(
                "repro_run_retries_total",
                "Extra window-solve attempts after failures.",
            ).inc(record.attempts - 1)
        if record.degraded:
            self.registry.counter(
                "repro_run_degradations_total",
                "Windows that fell back to a degraded path.",
                ("kind",),
            ).inc(kind="serial_fallback")
        elif record.status in ("failed", "no_solution", "timed_out"):
            self.registry.counter(
                "repro_run_degradations_total",
                "Windows that fell back to a degraded path.",
                ("kind",),
            ).inc(kind=record.status)
        logger.debug(
            "window %s family=%d (%d,%d) status=%s build=%.3fs "
            "queue=%.3fs solve=%.3fs attempts=%d",
            record.pass_label, record.family, record.ix, record.iy,
            record.status, record.build_seconds, record.queue_seconds,
            record.solve_seconds, record.attempts,
        )

    def record_faults(self, counts: dict) -> None:
        """Fold injected-fault counts (per site) into the registry.

        Called by the engine when a chaos controller is attached;
        no-op for empty counts, so clean runs never materialize the
        counter.
        """
        if not counts:
            return
        counter = self.registry.counter(
            "repro_run_faults_injected_total",
            "Faults injected by the chaos harness, by site.",
            ("site",),
        )
        for site, count in counts.items():
            counter.inc(count, site=site)

    def record_pass(
        self,
        label: str,
        *,
        wall_seconds: float,
        build_seconds: float,
        solve_seconds: float,
        measured_parallel_seconds: float,
        modeled_parallel_seconds: float,
        windows: int,
        applied: int,
        failed: int,
        timed_out: int,
        presolve_seconds: float = 0.0,
        cache_hits: int = 0,
        cache_misses: int = 0,
        windows_skipped_clean: int = 0,
    ) -> None:
        entry = {
            "label": label,
            "wall_seconds": wall_seconds,
            "build_seconds": build_seconds,
            "presolve_seconds": presolve_seconds,
            "solve_seconds": solve_seconds,
            "measured_parallel_seconds": measured_parallel_seconds,
            "modeled_parallel_seconds": modeled_parallel_seconds,
            "windows": windows,
            "applied": applied,
            "failed": failed,
            "timed_out": timed_out,
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "windows_skipped_clean": windows_skipped_clean,
        }
        self.passes.append(entry)
        self.registry.counter(
            "repro_run_passes_total",
            "DistOpt passes completed by this run.",
        ).inc()
        logger.info(
            "pass %s: %d windows (%d applied, %d failed, %d timed "
            "out, %d cached, %d clean-skipped) wall=%.2fs "
            "solve=%.2fs parallel measured=%.2fs modeled=%.2fs "
            "[%s x%d]",
            label, windows, applied, failed, timed_out, cache_hits,
            windows_skipped_clean, wall_seconds, solve_seconds,
            measured_parallel_seconds, modeled_parallel_seconds,
            self.executor, self.jobs,
        )

    # ------------------------------------------------------ aggregates
    def _count(self, status: str) -> int:
        return sum(1 for r in self.records if r.status == status)

    def summary(self) -> dict:
        """The telemetry JSON document (schema v4)."""
        build = sum(r.build_seconds for r in self.records)
        presolve = sum(r.presolve_seconds for r in self.records)
        solve = sum(r.solve_seconds for r in self.records)
        queue = sum(r.queue_seconds for r in self.records)
        measured = sum(
            p["measured_parallel_seconds"] for p in self.passes
        )
        modeled = modeled_parallel_seconds(self.records)
        cache_hits = sum(p.get("cache_hits", 0) for p in self.passes)
        cache_misses = sum(
            p.get("cache_misses", 0) for p in self.passes
        )
        cache_total = cache_hits + cache_misses
        return {
            "schema": TELEMETRY_SCHEMA,
            "executor": self.executor,
            "jobs": self.jobs,
            "windows": {
                "total": len(self.records),
                "applied": self._count("applied"),
                "reverted": self._count("reverted"),
                "no_move": self._count("no_move"),
                "no_solution": self._count("no_solution"),
                "failed": self._count("failed"),
                "timed_out": self._count("timed_out"),
                "cached": self._count("cached"),
                "skipped_clean": self._count("skipped_clean"),
            },
            "seconds": {
                "wall": self.wall_seconds,
                "build": build,
                "presolve": presolve,
                "solve": solve,
                "queue_wait": queue,
                "measured_parallel": measured,
                "modeled_parallel": modeled,
            },
            "cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": (
                    cache_hits / cache_total if cache_total else 0.0
                ),
            },
            "speedup": {
                # serial solve work over what the engine achieved /
                # what a perfect parallel machine would achieve.
                "measured": solve / measured if measured > 0 else None,
                "modeled": solve / modeled if modeled > 0 else None,
            },
            "counters": self.registry.to_dict(),
            "trace": (
                {"trace_id": self.trace_id}
                if self.trace_id is not None
                else None
            ),
            "passes": self.passes,
            "windows_detail": [asdict(r) for r in self.records],
        }

    def save(self, path: str | Path) -> Path:
        """Persist ``summary()`` as indented JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.summary(), indent=1))
        logger.info("telemetry -> %s", path)
        return path

    @classmethod
    def from_spans(cls, spans) -> "RunTelemetry":
        """Derive a telemetry object from a recorded span tree.

        The spine of the v4 design: spans are the primary record, and
        a telemetry document can be (re)built from any trace — e.g.
        ``repro trace report`` summarizing a run after the fact.  Each
        ``window`` span (with its ``build``/``presolve``/``solve``
        children and the ``outcome`` attr stamped by the apply side)
        becomes a :class:`WindowRecord`; ``distopt`` spans become pass
        entries.  Accepts :class:`repro.obs.Span` objects or span
        dicts.
        """
        from repro.obs.trace import Span

        objs = [
            s if isinstance(s, Span) else Span.from_dict(s)
            for s in spans
        ]
        telemetry = cls()
        by_parent: dict[str | None, list] = {}
        for s in objs:
            by_parent.setdefault(s.parent_id, []).append(s)
        for s in objs:
            if s.trace_id and telemetry.trace_id is None:
                telemetry.trace_id = s.trace_id
            if s.name == "vm1_opt":
                telemetry.wall_seconds = max(
                    telemetry.wall_seconds, s.wall_seconds
                )
                if "executor" in s.attrs:
                    telemetry.executor = str(s.attrs["executor"])
                    telemetry.jobs = int(s.attrs.get("jobs", 1))
        for s in objs:
            if s.name == "window":
                children = {
                    c.name: c for c in by_parent.get(s.span_id, [])
                }
                build = children.get("build")
                pre = children.get("presolve")
                solve = children.get("solve")
                telemetry.record_window(
                    WindowRecord(
                        pass_label=str(s.attrs.get("pass_label", "")),
                        family=int(s.attrs.get("family", 0)),
                        ix=int(s.attrs.get("ix", 0)),
                        iy=int(s.attrs.get("iy", 0)),
                        build_seconds=(
                            build.wall_seconds if build else 0.0
                        ),
                        presolve_seconds=(
                            pre.wall_seconds if pre else 0.0
                        ),
                        solve_seconds=(
                            solve.wall_seconds if solve else 0.0
                        ),
                        status=str(s.attrs.get("outcome", "skipped")),
                        attempts=1,
                        num_pairs=int(
                            solve.attrs.get("num_pairs", 0)
                            if solve
                            else 0
                        ),
                    )
                )
            elif s.name == "distopt":
                telemetry.record_pass(
                    str(s.attrs.get("pass_label", "")),
                    wall_seconds=s.wall_seconds,
                    build_seconds=0.0,
                    solve_seconds=0.0,
                    measured_parallel_seconds=0.0,
                    modeled_parallel_seconds=0.0,
                    windows=int(s.attrs.get("windows_built", 0)),
                    applied=int(s.attrs.get("windows_applied", 0)),
                    failed=0,
                    timed_out=0,
                    cache_hits=int(s.attrs.get("windows_cached", 0)),
                    windows_skipped_clean=int(
                        s.attrs.get("windows_skipped_clean", 0)
                    ),
                )
        return telemetry


def load_telemetry(path: str | Path) -> dict:
    """Read a telemetry JSON document, accepting schema v3 or v4.

    v3 documents are normalized to the v4 shape: the sections v4
    added (``counters``, ``trace``) are filled with their empty
    defaults and the ``schema`` field is left at the document's own
    version so callers can tell what was actually on disk.
    """
    doc = json.loads(Path(path).read_text())
    schema = doc.get("schema")
    if schema not in READABLE_SCHEMAS:
        raise ValueError(
            f"unsupported telemetry schema {schema!r} "
            f"(expected one of {READABLE_SCHEMAS})"
        )
    doc.setdefault("counters", {})
    doc.setdefault("trace", None)
    return doc
