"""Parallel window-solve execution engine for DistOpt (§4.1).

The paper's Algorithm 2 groups windows into independently-optimizable
families precisely so they can be *distributed*; this package is the
machinery that actually does it:

* :mod:`repro.runtime.task` — :class:`WindowTask`, the picklable
  window subproblem that crosses a process boundary, and
  :class:`SolverSpec`, the backend recipe rebuilt in the worker.
* :mod:`repro.runtime.executors` — interchangeable backends:
  :class:`SerialExecutor` (inline, default), :class:`ThreadExecutor`
  (GIL-releasing solvers), :class:`MultiprocessExecutor`.
* :mod:`repro.runtime.scheduler` — family-by-family dispatch with
  per-task timeout, bounded retry, and graceful degradation.
* :mod:`repro.runtime.telemetry` — structured logging, per-window
  build/queue/solve records, and the speedup-vs-model JSON report.

Determinism contract: solutions are applied in canonical window order
regardless of completion order, so a parallel run produces a placement
byte-identical to the serial run on the same seed.
"""

from repro.runtime.executors import (
    EXECUTOR_KINDS,
    Executor,
    MultiprocessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_cores,
    make_executor,
)
from repro.runtime.scheduler import FamilyScheduler, ScheduleConfig
from repro.runtime.task import SolverSpec, WindowTask, WindowTaskResult
from repro.runtime.telemetry import (
    TELEMETRY_SCHEMA,
    RunTelemetry,
    WindowRecord,
    modeled_parallel_seconds,
)

__all__ = [
    "EXECUTOR_KINDS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "MultiprocessExecutor",
    "make_executor",
    "available_cores",
    "FamilyScheduler",
    "ScheduleConfig",
    "SolverSpec",
    "WindowTask",
    "WindowTaskResult",
    "RunTelemetry",
    "WindowRecord",
    "modeled_parallel_seconds",
    "TELEMETRY_SCHEMA",
]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.runtime")
