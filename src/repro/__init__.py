"""repro — reproduction of vertical-M1 routing-aware detailed placement."""

from repro.log import install_null_handler

install_null_handler()
