"""Ordered single-row detailed placement (the DP baseline of §2).

Each sweep processes rows independently: cell order within the row is
fixed (the hallmark of the single-row DP formulations), every cell
gets a *preferred* x — the median of its connected pins' x
coordinates outside the cell — and the classic clumping algorithm
(Abacus/Kahng-Tucker-Zelikovsky style) finds the minimum-displacement
non-overlapping positions for the ordered sequence.  Sweeps repeat
until the HPWL improvement stalls.

This optimizer is wirelength-only by construction: it cannot trade
HPWL for vertical pin alignment, which is precisely the limitation
the paper's MILP removes.  The benchmark suite measures that
contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.design import Design, Instance


@dataclass
class RowDpResult:
    """Outcome of a row-DP refinement run."""

    sweeps: int
    initial_hpwl: int
    final_hpwl: int
    moved_cells: int

    @property
    def improvement(self) -> float:
        if self.initial_hpwl == 0:
            return 0.0
        return (
            self.initial_hpwl - self.final_hpwl
        ) / self.initial_hpwl


@dataclass
class _Cluster:
    """A clump of consecutive cells placed contiguously.

    ``moment``/``weight`` is the unconstrained optimal position of the
    clump's first cell (standard Abacus bookkeeping: every member
    contributes its preferred origin minus its offset inside the
    clump).
    """

    weight: float
    moment: float
    width: int  # total width in sites
    first: int  # index of first member
    last: int

    def position(self, num_columns: int) -> float:
        raw = self.moment / self.weight
        return min(max(raw, 0.0), float(num_columns - self.width))


def _median(xs: list[float]) -> float:
    xs = sorted(xs)
    mid = len(xs) // 2
    if len(xs) % 2:
        return xs[mid]
    return (xs[mid - 1] + xs[mid]) / 2.0


def _preferred_column(design: Design, inst: Instance) -> float:
    """Wirelength-optimal-ish origin target in fractional columns.

    For each connected pin, the best x for that pin is the median of
    the net's *other* terminal x's; the implied origin target is that
    median minus the pin's offset.  The cell's preference is the
    median of the per-pin targets (medians compose well for L1
    objectives)."""
    targets: list[float] = []
    for pin_name, net_name in sorted(inst.net_of_pin.items()):
        net = design.nets[net_name]
        others: list[float] = [
            float(design.instances[ref.instance].pin_position(ref.pin).x)
            for ref in net.pins
            if ref.instance != inst.name
        ]
        others.extend(float(pad.x) for pad in net.pads)
        if not others:
            continue
        pin_offset = inst.pin_position(pin_name).x - inst.x
        targets.append(_median(others) - pin_offset)
    if not targets:
        return float(design.column_of(inst))
    target_x = _median(targets)
    return (target_x - design.die.xlo) / design.tech.site_width


def _clump_row(
    design: Design, members: list[Instance], num_columns: int
) -> int:
    """Place ordered ``members`` at clumped optimal positions.

    Returns the number of cells that moved.
    """
    if not members:
        return 0
    widths = [inst.macro.width_sites for inst in members]
    prefix = [0]
    for w in widths:
        prefix.append(prefix[-1] + w)
    preferred = [
        _preferred_column(design, inst) for inst in members
    ]

    clusters: list[_Cluster] = []
    for i in range(len(members)):
        clusters.append(
            _Cluster(
                weight=1.0,
                moment=preferred[i],
                width=widths[i],
                first=i,
                last=i,
            )
        )
        # Abacus clumping: merge while the previous cluster's placed
        # end overlaps this cluster's optimal start.
        while len(clusters) > 1:
            prev, cur = clusters[-2], clusters[-1]
            if (
                prev.position(num_columns) + prev.width
                <= cur.position(num_columns) + 1e-9
            ):
                break
            # Members of cur sit prev.width sites after prev's origin.
            prev.moment += cur.moment - cur.weight * prev.width
            prev.weight += cur.weight
            prev.width += cur.width
            prev.last = cur.last
            clusters.pop()

    moved = 0
    cursor = 0
    remaining = sum(c.width for c in clusters)
    for cluster in clusters:
        remaining -= cluster.width
        # Leave room for every cluster still to be placed.
        limit = num_columns - cluster.width - remaining
        origin = round(cluster.position(num_columns))
        origin = max(cursor, min(origin, limit))
        col = origin
        for i in range(cluster.first, cluster.last + 1):
            inst = members[i]
            row = design.row_of(inst)
            if design.column_of(inst) != col:
                moved += 1
            design.place(inst.name, col, row, flipped=inst.flipped)
            col += inst.macro.width_sites
        cursor = col
    return moved


def row_dp_refine(
    design: Design,
    *,
    max_sweeps: int = 8,
    min_improvement: float = 0.001,
) -> RowDpResult:
    """Refine the placement with ordered single-row sweeps.

    Args:
        design: legal placed design; refined in place (stays legal).
        max_sweeps: sweep budget.
        min_improvement: stop when a sweep improves total HPWL by
            less than this fraction.
    """
    initial = design.total_hpwl()
    previous = initial
    moved_total = 0
    sweeps = 0
    for _ in range(max_sweeps):
        sweeps += 1
        snapshot = design.placement_snapshot()
        by_row: dict[int, list[Instance]] = {}
        for _, inst in sorted(design.instances.items()):
            if not inst.fixed:
                by_row.setdefault(design.row_of(inst), []).append(inst)
        moved_this_sweep = 0
        for row in sorted(by_row):
            members = sorted(by_row[row], key=lambda i: i.x)
            moved_this_sweep += _clump_row(
                design, members, design.num_columns
            )
        current = design.total_hpwl()
        if current > previous:
            # A sweep is a heuristic; never accept a regression.
            design.restore_placement(snapshot)
            break
        moved_total += moved_this_sweep
        if previous - current < min_improvement * max(previous, 1):
            previous = current
            break
        previous = current
    return RowDpResult(
        sweeps=sweeps,
        initial_hpwl=initial,
        final_hpwl=previous,
        moved_cells=moved_total,
    )
