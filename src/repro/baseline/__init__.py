"""Baseline detailed placers from the paper's related-work section.

The paper (§2) contrasts its MILP with dynamic-programming single-row
approaches [Kahng et al. 99, Hur & Lillis 00]: efficient for
wirelength, but unable to express *inter-row* objectives such as
vertical M1 alignment.  :mod:`repro.baseline.row_dp` implements that
class of optimizer — ordered single-row placement with optimal
positions under HPWL — so the contrast can be measured: the DP
baseline improves HPWL/RWL but leaves #dM1 essentially unchanged,
while the windowed MILP improves both.
"""

from repro.baseline.row_dp import RowDpResult, row_dp_refine

__all__ = ["RowDpResult", "row_dp_refine"]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.baseline")
