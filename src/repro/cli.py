"""Command-line interface.

Subcommands:

* ``repro generate`` — synthesize a benchmark, place it, and write
  LEF / DEF / structural Verilog to a directory.
* ``repro flow`` — run the full flow (place → route → VM1Opt →
  re-route) and print the Table 2-style row; optionally dump
  before/after DEF and SVG views.
* ``repro experiment`` — run one paper experiment (fig5/fig6/fig7/
  table2/fig8) at a chosen scale preset and print the markdown table.

Run ``repro <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.eval import (
    EvalScale,
    expt_a1_window_sweep,
    expt_a2_alpha_sweep,
    expt_a3_sequences,
    expt_b_fig8_drv_sweep,
    expt_b_table2,
    render_markdown_table,
)
from repro.flow import FlowConfig, run_flow, table2_row
from repro.lefdef import write_def, write_lef
from repro.library import build_library
from repro.netlist import generate_design
from repro.netlist.verilog import write_verilog
from repro.placement import place_design
from repro.runtime import EXECUTOR_KINDS
from repro.tech import CellArchitecture, make_tech

_ARCHS = {arch.value: arch for arch in CellArchitecture}
_PRESETS = {
    "quick": EvalScale.quick,
    "default": EvalScale,
    "paper": EvalScale.paper,
}


def _add_common_design_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", default="aes",
        choices=("m0", "aes", "jpeg", "vga"),
        help="benchmark profile (Table 2 designs)",
    )
    parser.add_argument(
        "--arch", default="closedm1", choices=sorted(_ARCHS),
        help="cell architecture",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="instance-count scale (1.0 = paper size)",
    )
    parser.add_argument(
        "--utilization", type=float, default=0.75,
        help="placement utilization target",
    )
    parser.add_argument("--seed", type=int, default=1)


def _cmd_generate(args: argparse.Namespace) -> int:
    tech = make_tech(_ARCHS[args.arch])
    library = build_library(tech)
    design = generate_design(
        args.profile, tech, library, scale=args.scale,
        utilization=args.utilization, seed=args.seed,
    )
    place_design(design, seed=args.seed)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    (out / f"{design.name}.lef").write_text(write_lef(library))
    (out / f"{design.name}.def").write_text(write_def(design))
    (out / f"{design.name}.v").write_text(write_verilog(design))
    print(
        f"{design.name}: {len(design.instances)} instances, "
        f"{len(design.nets)} nets -> {out}/"
    )
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    config = FlowConfig(
        profile=args.profile,
        arch=_ARCHS[args.arch],
        scale=args.scale,
        utilization=args.utilization,
        seed=args.seed,
        window_um=args.window_um,
        lx=args.lx,
        ly=args.ly,
        time_limit=args.time_limit,
        executor=args.executor,
        jobs=args.jobs,
        presolve=not args.no_presolve,
        window_cache=not args.no_window_cache,
    )
    result = run_flow(config)
    if args.telemetry and result.telemetry is not None:
        path = result.telemetry.save(args.telemetry)
        print(f"telemetry -> {path}", file=sys.stderr)
    row = table2_row(result)
    if args.json:
        print(json.dumps(row, indent=1, default=str))
    else:
        print(render_markdown_table([row]))
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        (out / "post.def").write_text(write_def(result.design))
        from repro.viz import render_design_svg

        (out / "layout_opt.svg").write_text(
            render_design_svg(result.design)
        )
        print(f"artifacts -> {out}/")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    scale = _PRESETS[args.preset]()
    runners = {
        "fig5": lambda: expt_a1_window_sweep(scale),
        "fig6": lambda: expt_a2_alpha_sweep(scale),
        "fig7": lambda: expt_a3_sequences(scale),
        "table2": lambda: expt_b_table2(scale),
        "fig8": lambda: expt_b_fig8_drv_sweep(scale),
    }
    rows = runners[args.which]()
    print(render_markdown_table(rows))
    if args.out:
        Path(args.out).write_text(
            json.dumps(rows, indent=1, default=str)
        )
        print(f"rows -> {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Vertical M1 routing-aware detailed placement "
            "(DAC 2017 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="generate + place a benchmark; write LEF/DEF/V"
    )
    _add_common_design_args(gen)
    gen.add_argument("--out", default="out", help="output directory")
    gen.set_defaults(func=_cmd_generate)

    flow = sub.add_parser("flow", help="run the full optimization flow")
    _add_common_design_args(flow)
    flow.add_argument("--window-um", type=float, default=1.25)
    flow.add_argument("--lx", type=int, default=4)
    flow.add_argument("--ly", type=int, default=1)
    flow.add_argument("--time-limit", type=float, default=4.0)
    flow.add_argument(
        "--jobs", type=int, default=1,
        help="window-solve workers (1 = serial)",
    )
    flow.add_argument(
        "--executor", default="auto", choices=EXECUTOR_KINDS,
        help="window-solve executor backend (auto: serial when "
        "--jobs 1, else a process pool)",
    )
    flow.add_argument(
        "--no-presolve", action="store_true",
        help="disable the window-model presolve reductions",
    )
    flow.add_argument(
        "--no-window-cache", action="store_true",
        help="disable the cross-pass window-solve cache",
    )
    flow.add_argument(
        "--telemetry", default="",
        help="write runtime telemetry JSON to this path",
    )
    flow.add_argument("--json", action="store_true")
    flow.add_argument("--out", default="", help="artifact directory")
    flow.set_defaults(func=_cmd_flow)

    expt = sub.add_parser(
        "experiment", help="run one paper experiment"
    )
    expt.add_argument(
        "which", choices=("fig5", "fig6", "fig7", "table2", "fig8")
    )
    expt.add_argument(
        "--preset", default="quick", choices=sorted(_PRESETS)
    )
    expt.add_argument("--out", default="", help="JSON rows output path")
    expt.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
