"""Command-line interface.

Subcommands:

* ``repro generate`` — synthesize a benchmark, place it, and write
  LEF / DEF / structural Verilog to a directory.
* ``repro flow`` — run the full flow (place → route → VM1Opt →
  re-route) and print the Table 2-style row; optionally dump
  before/after DEF and SVG views.
* ``repro experiment`` — run one paper experiment (fig5/fig6/fig7/
  table2/fig8) at a chosen scale preset and print the markdown table.
* ``repro serve`` — run the durable job service (HTTP API + job
  manager over an on-disk journal; see :mod:`repro.service`).
* ``repro submit`` — submit a flow job to a running service.
* ``repro jobs`` — list/inspect/cancel/watch service jobs.
* ``repro check`` — differential verification: fuzz seeded window
  cases against the independent oracle + brute-force optimum
  (:mod:`repro.check`), replay corpus reproducers, and run the
  presolve/executor/resume equivalence axes.
* ``repro chaos`` — deterministic fault injection: run one fault
  plan faulted-vs-clean (:mod:`repro.chaos`), fuzz seeded random
  plans with failure shrinking, or list the hook-site inventory.

Run ``repro <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.eval import (
    EvalScale,
    expt_a1_window_sweep,
    expt_a2_alpha_sweep,
    expt_a3_sequences,
    expt_b_fig8_drv_sweep,
    expt_b_table2,
    render_markdown_table,
)
from repro.flow import FlowConfig, run_flow, table2_row
from repro.lefdef import write_def, write_lef
from repro.library import build_library
from repro.netlist import generate_design
from repro.netlist.verilog import write_verilog
from repro.placement import place_design
from repro.runtime import EXECUTOR_KINDS
from repro.tech import CellArchitecture, make_tech

_ARCHS = {arch.value: arch for arch in CellArchitecture}
_PRESETS = {
    "quick": EvalScale.quick,
    "default": EvalScale,
    "paper": EvalScale.paper,
}


def _positive_int(text: str) -> int:
    """argparse type: strictly positive integer (fails at parse time,
    not with a traceback deep inside a worker pool)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})"
        )
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type: integer >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (got {value})"
        )
    return value


def _shards_value(text: str) -> int | str:
    """argparse type for ``--shards``: a positive int or ``auto``."""
    if text == "auto":
        return "auto"
    return _positive_int(text)


def _positive_float(text: str) -> float:
    """argparse type: strictly positive float."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid float value: {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be > 0 (got {value})"
        )
    return value


def _add_common_design_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", default="aes",
        choices=("m0", "aes", "jpeg", "vga"),
        help="benchmark profile (Table 2 designs)",
    )
    parser.add_argument(
        "--arch", default="closedm1", choices=sorted(_ARCHS),
        help="cell architecture",
    )
    parser.add_argument(
        "--scale", type=_positive_float, default=0.05,
        help="instance-count scale (1.0 = paper size)",
    )
    parser.add_argument(
        "--utilization", type=float, default=0.75,
        help="placement utilization target",
    )
    parser.add_argument("--seed", type=int, default=1)


def _cmd_generate(args: argparse.Namespace) -> int:
    tech = make_tech(_ARCHS[args.arch])
    library = build_library(tech)
    design = generate_design(
        args.profile, tech, library, scale=args.scale,
        utilization=args.utilization, seed=args.seed,
    )
    place_design(design, seed=args.seed)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    (out / f"{design.name}.lef").write_text(write_lef(library))
    (out / f"{design.name}.def").write_text(write_def(design))
    (out / f"{design.name}.v").write_text(write_verilog(design))
    print(
        f"{design.name}: {len(design.instances)} instances, "
        f"{len(design.nets)} nets -> {out}/"
    )
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    if args.telemetry:
        target = Path(args.telemetry)
        if target.is_dir():
            print(
                f"--telemetry: path is a directory: {args.telemetry}",
                file=sys.stderr,
            )
            return 2
        if not target.parent.is_dir():
            print(
                f"--telemetry: directory does not exist: "
                f"{target.parent}",
                file=sys.stderr,
            )
            return 2
    config = FlowConfig(
        profile=args.profile,
        arch=_ARCHS[args.arch],
        scale=args.scale,
        utilization=args.utilization,
        seed=args.seed,
        window_um=args.window_um,
        lx=args.lx,
        ly=args.ly,
        time_limit=args.time_limit,
        executor=args.executor,
        jobs=args.jobs,
        presolve=not args.no_presolve,
        window_cache=not args.no_window_cache,
        dirty_tracking=not args.no_dirty_tracking,
        shards=args.shards,
        halo_rows=args.halo_rows,
    )
    if args.trace:
        from repro.obs.trace import disable, enable

        enable(
            args.trace,
            profile_spans=tuple(args.trace_profile or ()),
        )
    try:
        result = run_flow(config)
    finally:
        if args.trace:
            disable()
            print(f"trace -> {args.trace}", file=sys.stderr)
    if result.shard is not None:
        summary = result.shard.summary()
        print(
            f"sharded x{summary['num_shards']} "
            f"(halo {summary['halo_rows']} rows, "
            f"{summary['boundary_nets']} boundary nets, "
            f"seam applied {summary['seam_windows_applied']} windows, "
            f"legal={summary['legal']})",
            file=sys.stderr,
        )
    if args.telemetry and result.telemetry is not None:
        path = result.telemetry.save(args.telemetry)
        print(f"telemetry -> {path}", file=sys.stderr)
    row = table2_row(result)
    if args.json:
        print(json.dumps(row, indent=1, default=str))
    else:
        print(render_markdown_table([row]))
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        (out / "post.def").write_text(write_def(result.design))
        from repro.viz import render_design_svg

        (out / "layout_opt.svg").write_text(
            render_design_svg(result.design)
        )
        print(f"artifacts -> {out}/")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    return serve(
        args.root,
        host=args.host,
        port=args.port,
        workers=args.workers,
    )


def _spec_from_args(args: argparse.Namespace) -> dict:
    """Flow-job spec from submit's CLI options (defaults omitted so
    the service applies its own)."""
    spec = {
        "profile": args.profile,
        "arch": args.arch,
        "scale": args.scale,
        "utilization": args.utilization,
        "seed": args.seed,
        "window_um": args.window_um,
        "lx": args.lx,
        "ly": args.ly,
        "time_limit": args.time_limit,
        "executor": args.executor,
        "jobs": args.jobs,
        "shards": args.shards,
        "halo_rows": args.halo_rows,
    }
    if args.no_presolve:
        spec["presolve"] = False
    if args.no_window_cache:
        spec["window_cache"] = False
    if args.no_dirty_tracking:
        spec["dirty_tracking"] = False
    if args.trace:
        spec["trace"] = True
    return spec


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        job_id = client.submit(_spec_from_args(args))
    except ServiceError as exc:
        print(f"submit rejected: {exc}", file=sys.stderr)
        return 1
    print(job_id)
    if not args.wait:
        return 0
    record = client.wait(job_id, timeout=args.timeout)
    if record["state"] != "done":
        print(
            f"job {job_id} {record['state']}: "
            f"{record.get('error', '')}",
            file=sys.stderr,
        )
        return 1
    row = client.result(job_id)["table2"]
    if args.json:
        print(json.dumps(row, indent=1, default=str))
    else:
        print(render_markdown_table([row]))
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.job is None:
            for record in client.jobs():
                print(
                    f"{record['job_id']}  {record['state']:<10} "
                    f"attempts={record['attempts']} "
                    f"kind={record['kind']}"
                )
            return 0
        if args.cancel:
            record = client.cancel(args.job)
            print(f"{record['job_id']}  {record['state']}")
            return 0
        if args.watch:
            for event in client.events(args.job, follow=True):
                print(json.dumps(event))
            return 0
        print(json.dumps(client.status(args.job), indent=1))
        return 0
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.export import read_trace, write_report

    if args.action == "report":
        out = write_report(
            args.path,
            out_path=args.out or None,
            title=args.title or None,
        )
        print(f"report -> {out}")
        return 0
    # summary: derive a telemetry document from the recorded spans.
    from repro.runtime.telemetry import RunTelemetry

    spans = read_trace(args.path)
    doc = RunTelemetry.from_spans(spans).summary()
    print(json.dumps(doc, indent=1))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    scale = _PRESETS[args.preset]()
    runners = {
        "fig5": lambda: expt_a1_window_sweep(scale),
        "fig6": lambda: expt_a2_alpha_sweep(scale),
        "fig7": lambda: expt_a3_sequences(scale),
        "table2": lambda: expt_b_table2(scale),
        "fig8": lambda: expt_b_fig8_drv_sweep(scale),
    }
    rows = runners[args.which]()
    print(render_markdown_table(rows))
    if args.out:
        Path(args.out).write_text(
            json.dumps(rows, indent=1, default=str)
        )
        print(f"rows -> {args.out}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    # Imported here: the verification stack is heavy and only this
    # subcommand needs it.
    from repro.check import fuzz, replay_reproducer
    from repro.check.differential import (
        check_chaos_axis,
        check_dirty_onoff_axis,
        check_executor_axis,
        check_resume_axis,
    )

    if args.replay:
        failed = False
        for path in args.replay:
            report = replay_reproducer(
                path, max_assignments=args.max_assignments
            )
            print(f"{path}: {report.describe()}")
            failed |= not report.ok
        return 1 if failed else 0

    axes = set(args.axes.split(","))
    unknown = axes - {
        "brute", "presolve", "executor", "resume", "dirty_onoff",
        "chaos",
    }
    if unknown:
        print(f"unknown axes: {sorted(unknown)}", file=sys.stderr)
        return 2

    arch = _ARCHS[args.arch] if args.arch else None

    def progress(seed: int, report) -> None:
        if report.status == "failed":
            print(f"FAIL {report.describe()}", file=sys.stderr)

    summary = fuzz(
        args.fuzz,
        start_seed=args.seed,
        arch=arch,
        kind=args.kind,
        corpus_dir=args.corpus,
        max_assignments=args.max_assignments,
        presolve_axis="presolve" in axes,
        progress=progress,
    )
    axis_errors: dict[str, list[str]] = {}
    if "executor" in axes:
        axis_errors["executor"] = check_executor_axis()
    if "resume" in axes:
        axis_errors["resume"] = check_resume_axis()
    if "dirty_onoff" in axes:
        axis_errors["dirty_onoff"] = check_dirty_onoff_axis()
    if "chaos" in axes:
        axis_errors["chaos"] = check_chaos_axis()

    doc = summary.to_dict()
    doc["axes"] = {name: errs for name, errs in axis_errors.items()}
    if args.json:
        print(json.dumps(doc, indent=1))
    else:
        print(
            f"fuzz: {summary.certified} certified, "
            f"{summary.skipped} skipped, {summary.failed} failed "
            f"of {summary.total} cases "
            f"({summary.assignments_enumerated} assignments "
            f"enumerated)"
        )
        for name, errs in axis_errors.items():
            state = "ok" if not errs else f"FAILED: {errs}"
            print(f"axis {name}: {state}")
        for path in summary.reproducers:
            print(f"reproducer -> {path}")
    ok = summary.ok and not any(axis_errors.values())
    return 0 if ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos.plan import SITES, ChaosPlanError, FaultPlan

    if args.chaos_cmd == "sites":
        for site in sorted(SITES):
            print(f"{site}: {', '.join(SITES[site])}")
        return 0

    if args.chaos_cmd == "run":
        try:
            plan = FaultPlan.load(args.plan)
        except FileNotFoundError:
            print(
                f"chaos plan not found: {args.plan}", file=sys.stderr
            )
            return 2
        except (ChaosPlanError, ValueError) as exc:
            print(f"invalid chaos plan: {exc}", file=sys.stderr)
            return 2
        if args.seed is not None:
            plan = plan.with_seed(args.seed)
        from repro.chaos.runner import run_chaos_case

        result = run_chaos_case(
            plan,
            profile=args.profile,
            scale=args.scale,
            seed=args.case_seed,
            time_limit=args.time_limit,
        )
        doc = result.summary()
        if args.json:
            print(json.dumps(doc, indent=1))
        else:
            fires = ", ".join(
                f"{site}={count}"
                for site, count in sorted(doc["fires"].items())
            ) or "none"
            print(
                f"converged={doc['converged']} fires=[{fires}] "
                f"resumes={doc['resume_attempts']} "
                f"error_spans={doc['error_spans']}"
            )
            for error in doc["errors"]:
                print(f"FAIL {error}", file=sys.stderr)
        return 0 if result.converged else 1

    # fuzz
    from repro.chaos.runner import run_fuzz

    summary = run_fuzz(
        args.plans,
        seed=args.seed or 0,
        out_dir=args.artifacts or None,
        profile=args.profile,
        scale=args.scale,
        case_seed=args.case_seed,
        time_limit=args.time_limit,
    )
    if args.json:
        print(json.dumps(summary, indent=1))
    else:
        print(
            f"chaos fuzz: {summary['ran']} plans ran, "
            f"{summary['failed']} failed"
        )
        for errors in summary["errors"]:
            print(f"FAIL {errors}", file=sys.stderr)
        for path in summary["artifacts"]:
            print(f"shrunken plan -> {path}")
    return 0 if summary["failed"] == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Vertical M1 routing-aware detailed placement "
            "(DAC 2017 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="generate + place a benchmark; write LEF/DEF/V"
    )
    _add_common_design_args(gen)
    gen.add_argument("--out", default="out", help="output directory")
    gen.set_defaults(func=_cmd_generate)

    flow = sub.add_parser("flow", help="run the full optimization flow")
    _add_common_design_args(flow)
    flow.add_argument("--window-um", type=float, default=1.25)
    flow.add_argument("--lx", type=int, default=4)
    flow.add_argument("--ly", type=int, default=1)
    flow.add_argument(
        "--time-limit", type=_positive_float, default=4.0,
        help="per-window MILP time limit in seconds",
    )
    flow.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="window-solve workers; must be >= 1 (1 = serial)",
    )
    flow.add_argument(
        "--executor", default="auto", choices=EXECUTOR_KINDS,
        help="window-solve executor backend; 'auto' resolves to "
        "'serial' when --jobs is 1 and to 'process' (a process "
        "pool with --jobs workers) otherwise",
    )
    flow.add_argument(
        "--no-presolve", action="store_true",
        help="disable the window-model presolve reductions",
    )
    flow.add_argument(
        "--no-window-cache", action="store_true",
        help="disable the cross-pass window-solve cache",
    )
    flow.add_argument(
        "--no-dirty-tracking", action="store_true",
        help="disable dirty-region window skipping and the "
        "incremental (delta-accounted) objective",
    )
    flow.add_argument(
        "--shards", type=_shards_value, default=1, metavar="N|auto",
        help="region-shard the die into N row bands for full-chip "
        "scale-out ('auto' sizes from the design and --jobs; 1 = "
        "classic unsharded run)",
    )
    flow.add_argument(
        "--halo-rows", type=_nonnegative_int, default=2,
        help="frozen ghost rows around each shard's core band",
    )
    flow.add_argument(
        "--telemetry", default="",
        help="write runtime telemetry JSON to this path",
    )
    flow.add_argument(
        "--trace", default="", metavar="PATH",
        help="write a hierarchical span trace (repro.obs.trace/v1 "
        "NDJSON) to this path; render it with 'repro trace report'",
    )
    flow.add_argument(
        "--trace-profile", action="append", metavar="SPAN",
        help="attach the sampling profiler to spans with this name "
        "(repeatable; e.g. 'solve'); requires --trace",
    )
    flow.add_argument("--json", action="store_true")
    flow.add_argument("--out", default="", help="artifact directory")
    flow.set_defaults(func=_cmd_flow)

    trace = sub.add_parser(
        "trace",
        help="inspect a recorded span trace (repro.obs.trace/v1)",
    )
    trace.add_argument(
        "action", choices=("report", "summary"),
        help="'report' renders a self-contained HTML timeline; "
        "'summary' prints a telemetry document derived from the spans",
    )
    trace.add_argument("path", help="trace NDJSON file")
    trace.add_argument(
        "--out", default="",
        help="HTML output path (default: trace path with .html)",
    )
    trace.add_argument("--title", default="", help="report title")
    trace.set_defaults(func=_cmd_trace)

    expt = sub.add_parser(
        "experiment", help="run one paper experiment"
    )
    expt.add_argument(
        "which", choices=("fig5", "fig6", "fig7", "table2", "fig8")
    )
    expt.add_argument(
        "--preset", default="quick", choices=sorted(_PRESETS)
    )
    expt.add_argument("--out", default="", help="JSON rows output path")
    expt.set_defaults(func=_cmd_experiment)

    serve = sub.add_parser(
        "serve",
        help="run the durable job service (HTTP API + job manager)",
        description=(
            "Serve flow jobs over HTTP with an on-disk journal. "
            "Jobs are checkpointed every DistOpt pass; a killed "
            "service resumes interrupted jobs on restart with a "
            "byte-identical final placement. SIGTERM/SIGINT drain "
            "gracefully (in-flight window solves finish, workers are "
            "joined) and exit 128+signum."
        ),
    )
    serve.add_argument(
        "--root", default=".repro-service",
        help="journal directory (created if missing)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="listen port (0 = ephemeral, printed at startup)",
    )
    serve.add_argument(
        "--workers", type=_positive_int, default=1,
        help="concurrent jobs; window-solve parallelism is per-job "
        "(the spec's executor/jobs)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a flow job to a running service"
    )
    submit.add_argument(
        "--url", default="http://127.0.0.1:8765",
        help="service base URL",
    )
    _add_common_design_args(submit)
    submit.add_argument("--window-um", type=float, default=1.25)
    submit.add_argument("--lx", type=int, default=4)
    submit.add_argument("--ly", type=int, default=1)
    submit.add_argument(
        "--time-limit", type=_positive_float, default=4.0,
        help="per-window MILP time limit in seconds",
    )
    submit.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="window-solve workers; must be >= 1 (1 = serial)",
    )
    submit.add_argument(
        "--executor", default="auto", choices=EXECUTOR_KINDS,
        help="window-solve executor backend; 'auto' resolves to "
        "'serial' when --jobs is 1 and to 'process' otherwise",
    )
    submit.add_argument("--no-presolve", action="store_true")
    submit.add_argument("--no-window-cache", action="store_true")
    submit.add_argument("--no-dirty-tracking", action="store_true")
    submit.add_argument(
        "--shards", type=_shards_value, default=1, metavar="N|auto",
        help="region-shard count for the job (int or 'auto')",
    )
    submit.add_argument(
        "--halo-rows", type=_nonnegative_int, default=2,
        help="frozen ghost rows around each shard's core band",
    )
    submit.add_argument(
        "--trace", action="store_true",
        help="ask the service to record a span trace for this job "
        "(written to the job directory as trace.ndjson)",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its Table-2 row",
    )
    submit.add_argument(
        "--timeout", type=_positive_float, default=None,
        help="give up waiting after this many seconds",
    )
    submit.add_argument("--json", action="store_true")
    submit.set_defaults(func=_cmd_submit)

    jobs = sub.add_parser(
        "jobs", help="list/inspect/cancel/watch service jobs"
    )
    jobs.add_argument(
        "--url", default="http://127.0.0.1:8765",
        help="service base URL",
    )
    jobs.add_argument(
        "--job", default=None, help="job id (omit to list all jobs)"
    )
    jobs.add_argument(
        "--cancel", action="store_true",
        help="request cooperative cancellation of --job",
    )
    jobs.add_argument(
        "--watch", action="store_true",
        help="stream --job progress events (NDJSON) until terminal",
    )
    jobs.set_defaults(func=_cmd_jobs)

    check = sub.add_parser(
        "check",
        help="differential verification: fuzz windows vs the oracle "
        "and brute-force optimum",
    )
    check.add_argument(
        "--fuzz", type=_positive_int, default=50, metavar="N",
        help="number of seeded cases to generate and certify",
    )
    check.add_argument(
        "--seed", type=int, default=0, help="first case seed"
    )
    check.add_argument(
        "--arch", choices=sorted(_ARCHS),
        help="pin the architecture (default: drawn per seed)",
    )
    check.add_argument(
        "--kind",
        help="pin the adversarial case kind (default: drawn per seed)",
    )
    check.add_argument(
        "--corpus", metavar="DIR",
        help="write shrunk failure reproducers into DIR",
    )
    check.add_argument(
        "--replay", nargs="+", metavar="JSON",
        help="replay reproducer files instead of fuzzing",
    )
    check.add_argument(
        "--axes", default="brute,presolve",
        help="comma list of axes to run: brute,presolve,executor,"
        "resume,dirty_onoff (default: brute,presolve)",
    )
    check.add_argument(
        "--max-assignments", type=_positive_int, default=50_000,
        help="brute-force enumeration cap per window",
    )
    check.add_argument(
        "--json", action="store_true", help="print a JSON summary"
    )
    check.set_defaults(func=_cmd_check)

    chaos = sub.add_parser(
        "chaos",
        help="deterministic fault injection: run a plan faulted-vs-"
        "clean, fuzz seeded plans, or list hook sites",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_cmd", required=True)

    def _add_chaos_case_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--profile", default="m0",
            choices=("m0", "aes", "jpeg", "vga"),
            help="workload benchmark profile",
        )
        p.add_argument(
            "--scale", type=_positive_float, default=0.01,
            help="workload instance-count scale",
        )
        p.add_argument(
            "--case-seed", type=int, default=2,
            help="workload design/placement seed",
        )
        p.add_argument(
            "--time-limit", type=_positive_float, default=1.0,
            help="per-window MILP time limit in seconds",
        )
        p.add_argument("--json", action="store_true")

    chaos_run = chaos_sub.add_parser(
        "run",
        help="run one fault plan faulted-vs-clean and assert the "
        "invariant ladder",
    )
    chaos_run.add_argument(
        "--plan", required=True, metavar="JSON",
        help="fault plan file (schema repro.chaos.plan/v1)",
    )
    chaos_run.add_argument(
        "--seed", type=int, default=None,
        help="override the plan's trigger seed",
    )
    _add_chaos_case_args(chaos_run)
    chaos_run.set_defaults(func=_cmd_chaos)

    chaos_fuzz = chaos_sub.add_parser(
        "fuzz",
        help="run seeded random plans; shrink and save failures",
    )
    chaos_fuzz.add_argument(
        "--plans", type=_positive_int, default=25, metavar="N",
        help="number of seeded random plans to run",
    )
    chaos_fuzz.add_argument(
        "--seed", type=int, default=0, help="fuzz seed"
    )
    chaos_fuzz.add_argument(
        "--artifacts", default="", metavar="DIR",
        help="write shrunken failing plans into DIR",
    )
    _add_chaos_case_args(chaos_fuzz)
    chaos_fuzz.set_defaults(func=_cmd_chaos)

    chaos_sites = chaos_sub.add_parser(
        "sites", help="list fault-injection sites and their actions"
    )
    chaos_sites.set_defaults(func=_cmd_chaos)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
