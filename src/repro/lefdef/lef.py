"""LEF writer and parser (5.7 subset)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Rect
from repro.library.library import Library
from repro.library.pins import PinDirection


@dataclass
class LefPin:
    """Parsed LEF pin: direction, use and port rectangles per layer."""

    name: str
    direction: str
    use: str
    rects: list[tuple[str, Rect]] = field(default_factory=list)


@dataclass
class LefMacro:
    """Parsed LEF macro geometry."""

    name: str
    size_x: float
    size_y: float
    site: str
    pins: dict[str, LefPin] = field(default_factory=dict)
    obs: list[tuple[str, Rect]] = field(default_factory=list)


def _use_of(direction: PinDirection) -> str:
    if direction is PinDirection.POWER:
        return "POWER"
    if direction is PinDirection.GROUND:
        return "GROUND"
    return "SIGNAL"


def _dir_of(direction: PinDirection) -> str:
    if direction in (PinDirection.POWER, PinDirection.GROUND):
        return "INOUT"
    return direction.value


def write_lef(library: Library) -> str:
    """Serialize ``library`` to LEF text."""
    tech = library.tech
    um = tech.dbu_per_micron
    lines: list[str] = [
        "VERSION 5.7 ;",
        'BUSBITCHARS "[]" ;',
        'DIVIDERCHAR "/" ;',
        f"UNITS\n  DATABASE MICRONS {um} ;\nEND UNITS",
        "",
        f"SITE coreSite",
        "  CLASS CORE ;",
        f"  SIZE {tech.site_width / um:.4f} BY "
        f"{tech.row_height / um:.4f} ;",
        "  SYMMETRY Y ;",
        "END coreSite",
        "",
    ]
    for name in library.names:
        macro = library.macro(name)
        lines.append(f"MACRO {name}")
        lines.append("  CLASS CORE ;")
        lines.append("  ORIGIN 0 0 ;")
        lines.append(
            f"  SIZE {macro.width / um:.4f} BY {macro.height / um:.4f} ;"
        )
        lines.append("  SYMMETRY X Y ;")
        lines.append("  SITE coreSite ;")
        for pin_name in sorted(macro.pins):
            pin = macro.pins[pin_name]
            lines.append(f"  PIN {pin_name}")
            lines.append(f"    DIRECTION {_dir_of(pin.direction)} ;")
            lines.append(f"    USE {_use_of(pin.direction)} ;")
            lines.append("    PORT")
            for shape in pin.shapes:
                layer = tech.layers[shape.layer_index].name
                r = shape.rect
                lines.append(f"      LAYER {layer} ;")
                lines.append(
                    f"        RECT {r.xlo / um:.4f} {r.ylo / um:.4f} "
                    f"{r.xhi / um:.4f} {r.yhi / um:.4f} ;"
                )
            lines.append("    END")
            lines.append(f"  END {pin_name}")
        lines.append(f"END {name}")
        lines.append("")
    lines.append("END LIBRARY")
    return "\n".join(lines) + "\n"


def parse_lef(text: str) -> dict[str, LefMacro]:
    """Parse LEF text into :class:`LefMacro` geometry records.

    Supports the subset :func:`write_lef` emits (plus harmless
    variations in whitespace).  Unknown statements inside macros are
    skipped.
    """
    macros: dict[str, LefMacro] = {}
    tokens = _statements(text)
    site_name = "coreSite"
    i = 0
    while i < len(tokens):
        stmt = tokens[i]
        if stmt[:1] == ["MACRO"]:
            macro, i = _parse_macro(tokens, i, site_name)
            macros[macro.name] = macro
        else:
            i += 1
    return macros


def _statements(text: str) -> list[list[str]]:
    """Split LEF text into per-line token lists (comments stripped)."""
    out: list[list[str]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        out.append(line.rstrip(";").split())
    return out


def _parse_macro(
    tokens: list[list[str]], start: int, site: str
) -> tuple[LefMacro, int]:
    name = tokens[start][1]
    macro = LefMacro(name=name, size_x=0.0, size_y=0.0, site=site)
    i = start + 1
    while i < len(tokens):
        stmt = tokens[i]
        if stmt[0] == "END" and len(stmt) > 1 and stmt[1] == name:
            return macro, i + 1
        if stmt[0] == "SIZE":
            macro.size_x = float(stmt[1])
            macro.size_y = float(stmt[3])
        elif stmt[0] == "SITE":
            macro.site = stmt[1]
        elif stmt[0] == "PIN":
            pin, i = _parse_pin(tokens, i)
            macro.pins[pin.name] = pin
            continue
        i += 1
    raise ValueError(f"unterminated MACRO {name}")


def _parse_pin(
    tokens: list[list[str]], start: int
) -> tuple[LefPin, int]:
    name = tokens[start][1]
    pin = LefPin(name=name, direction="INPUT", use="SIGNAL")
    i = start + 1
    layer = ""
    while i < len(tokens):
        stmt = tokens[i]
        if stmt[0] == "END" and len(stmt) > 1 and stmt[1] == name:
            return pin, i + 1
        if stmt[0] == "DIRECTION":
            pin.direction = stmt[1]
        elif stmt[0] == "USE":
            pin.use = stmt[1]
        elif stmt[0] == "LAYER":
            layer = stmt[1]
        elif stmt[0] == "RECT":
            coords = [float(v) for v in stmt[1:5]]
            um = 1000  # rect stored back in DBU at 1000 dbu/um
            pin.rects.append(
                (
                    layer,
                    Rect(
                        round(coords[0] * um),
                        round(coords[1] * um),
                        round(coords[2] * um),
                        round(coords[3] * um),
                    ),
                )
            )
        i += 1
    raise ValueError(f"unterminated PIN {name}")
