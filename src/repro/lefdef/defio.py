"""DEF writer and parser (5.7 subset)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Orientation, Point, Rect
from repro.netlist.design import Design


@dataclass
class DefComponent:
    """Parsed COMPONENTS entry."""

    name: str
    macro: str
    x: int
    y: int
    orient: str


@dataclass
class DefNet:
    """Parsed NETS entry: (instance, pin) pairs; PIN entries for pads."""

    name: str
    pins: list[tuple[str, str]] = field(default_factory=list)


@dataclass
class DefData:
    """Everything :func:`parse_def` extracts."""

    design_name: str
    die: Rect
    dbu_per_micron: int
    components: dict[str, DefComponent] = field(default_factory=dict)
    nets: dict[str, DefNet] = field(default_factory=dict)
    pads: dict[str, Point] = field(default_factory=dict)


def write_def(design: Design) -> str:
    """Serialize ``design`` (placement + connectivity) to DEF text."""
    tech = design.tech
    die = design.die
    lines = [
        "VERSION 5.7 ;",
        'DIVIDERCHAR "/" ;',
        'BUSBITCHARS "[]" ;',
        f"DESIGN {design.name} ;",
        f"UNITS DISTANCE MICRONS {tech.dbu_per_micron} ;",
        f"DIEAREA ( {die.xlo} {die.ylo} ) ( {die.xhi} {die.yhi} ) ;",
        "",
    ]
    for row in range(design.num_rows):
        orient = "FS" if row % 2 else "N"
        lines.append(
            f"ROW coreRow_{row} coreSite {die.xlo} "
            f"{die.ylo + row * tech.row_height} {orient} "
            f"DO {design.num_columns} BY 1 STEP {tech.site_width} 0 ;"
        )
    lines.append("")

    insts = sorted(design.instances.items())
    lines.append(f"COMPONENTS {len(insts)} ;")
    for name, inst in insts:
        status = "FIXED" if inst.fixed else "PLACED"
        lines.append(
            f"- {name} {inst.macro.name} + {status} "
            f"( {inst.x} {inst.y} ) {inst.orientation.value} ;"
        )
    lines.append("END COMPONENTS")
    lines.append("")

    pads = [
        (f"pad_{net_name}_{k}", net_name, pad)
        for net_name, net in sorted(design.nets.items())
        for k, pad in enumerate(net.pads)
    ]
    lines.append(f"PINS {len(pads)} ;")
    for pad_name, net_name, pad in pads:
        lines.append(
            f"- {pad_name} + NET {net_name} + DIRECTION INOUT "
            f"+ PLACED ( {pad.x} {pad.y} ) N ;"
        )
    lines.append("END PINS")
    lines.append("")

    nets = sorted(design.nets.items())
    lines.append(f"NETS {len(nets)} ;")
    for name, net in nets:
        refs = []
        for k, pad in enumerate(net.pads):
            refs.append(f"( PIN pad_{name}_{k} )")
        for ref in net.pins:
            refs.append(f"( {ref.instance} {ref.pin} )")
        lines.append(f"- {name} {' '.join(refs)} ;")
    lines.append("END NETS")
    lines.append("")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


def parse_def(text: str) -> DefData:
    """Parse DEF text (the :func:`write_def` subset)."""
    design_name = ""
    dbu = 1000
    die = None
    components: dict[str, DefComponent] = {}
    nets: dict[str, DefNet] = {}
    pads: dict[str, Point] = {}

    section = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.rstrip(";").split()
        if not tokens:
            continue
        head = tokens[0]
        if head == "DESIGN" and len(tokens) >= 2 and section == "":
            design_name = tokens[1]
        elif head == "UNITS":
            dbu = int(tokens[3])
        elif head == "DIEAREA":
            nums = [int(t) for t in tokens if _is_int(t)]
            die = Rect(nums[0], nums[1], nums[2], nums[3])
        elif head in ("COMPONENTS", "PINS", "NETS"):
            section = head
        elif head == "END" and len(tokens) > 1 and tokens[1] in (
            "COMPONENTS",
            "PINS",
            "NETS",
        ):
            section = ""
        elif head == "-" and section == "COMPONENTS":
            name, macro = tokens[1], tokens[2]
            nums = [int(t) for t in tokens if _is_int(t)]
            orient = tokens[-1]
            components[name] = DefComponent(
                name, macro, nums[-2], nums[-1], orient
            )
        elif head == "-" and section == "PINS":
            pad_name = tokens[1]
            nums = [int(t) for t in tokens if _is_int(t)]
            pads[pad_name] = Point(nums[-2], nums[-1])
        elif head == "-" and section == "NETS":
            net = DefNet(tokens[1])
            i = 2
            while i < len(tokens):
                if tokens[i] == "(":
                    a, b = tokens[i + 1], tokens[i + 2]
                    if a != "PIN":
                        net.pins.append((a, b))
                    i += 4
                else:
                    i += 1
            nets[net.name] = net

    if die is None:
        raise ValueError("DEF has no DIEAREA")
    return DefData(
        design_name=design_name,
        die=die,
        dbu_per_micron=dbu,
        components=components,
        nets=nets,
        pads=pads,
    )


def apply_def_placement(design: Design, text: str) -> int:
    """Load a DEF's component placement onto ``design``.

    Returns the number of instances whose placement changed.  Raises
    KeyError if the DEF references unknown instances.
    """
    data = parse_def(text)
    moved = 0
    for name, comp in data.components.items():
        inst = design.instances[name]
        orient = Orientation(comp.orient)
        if (inst.x, inst.y, inst.orientation) != (
            comp.x,
            comp.y,
            orient,
        ):
            moved += 1
        inst.x, inst.y, inst.orientation = comp.x, comp.y, orient
    return moved


def _is_int(token: str) -> bool:
    try:
        int(token)
    except ValueError:
        return False
    return True
