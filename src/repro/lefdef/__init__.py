"""LEF/DEF (5.7 subset) interchange.

The paper's implementation reads and writes LEF/DEF through
OpenAccess.  This package provides the same interchange boundary for
this repository's in-memory database:

* :func:`write_lef` / :func:`parse_lef` — library geometry (SITE,
  MACRO, PIN PORT rectangles, OBS).
* :func:`write_def` / :func:`parse_def` — die area, rows, placed
  components, pins (IO pads) and nets.
* :func:`apply_def_placement` — load a DEF's component placement back
  onto an existing design (the ECO path: optimize → write DEF →
  re-route elsewhere).

The dialect is a strict subset of LEF/DEF 5.7, so the emitted files
load in standard tools.
"""

from repro.lefdef.lef import LefMacro, LefPin, parse_lef, write_lef
from repro.lefdef.defio import (
    DefData,
    apply_def_placement,
    parse_def,
    write_def,
)

__all__ = [
    "LefMacro",
    "LefPin",
    "parse_lef",
    "write_lef",
    "DefData",
    "apply_def_placement",
    "parse_def",
    "write_def",
]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.lefdef")
