"""SVG renderers for placements and routing results."""

from __future__ import annotations

from repro.netlist.design import Design
from repro.routing.router import DetailedRouter

#: Fill colors by cell function family.
_FAMILY_COLORS = {
    "INV": "#9ecae1",
    "BUF": "#c6dbef",
    "NAND": "#fdae6b",
    "NOR": "#fdd0a2",
    "AND": "#fee6ce",
    "OR": "#fee6ce",
    "AOI": "#a1d99b",
    "OAI": "#c7e9c0",
    "XOR": "#bcbddc",
    "XNOR": "#dadaeb",
    "MUX": "#d9d9d9",
    "DFF": "#fc9272",
}


def _family_color(function: str) -> str:
    for prefix, color in _FAMILY_COLORS.items():
        if function.startswith(prefix):
            return color
    return "#eeeeee"


class _SvgCanvas:
    """Minimal SVG document builder (y-axis flipped to layout-up)."""

    def __init__(self, design: Design, scale: float) -> None:
        self.scale = scale
        self.height = design.die.height * scale
        self.width = design.die.width * scale
        self.die = design.die
        self.parts: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width:.0f}" height="{self.height:.0f}" '
            f'viewBox="0 0 {self.width:.0f} {self.height:.0f}">',
            f'<rect x="0" y="0" width="{self.width:.0f}" '
            f'height="{self.height:.0f}" fill="white" '
            'stroke="black"/>',
        ]

    def _x(self, x: int) -> float:
        return (x - self.die.xlo) * self.scale

    def _y(self, y: int) -> float:
        return self.height - (y - self.die.ylo) * self.scale

    def rect(
        self, xlo, ylo, xhi, yhi, fill, opacity=1.0, stroke="none",
        title=None,
    ) -> None:
        x, y = self._x(xlo), self._y(yhi)
        w = (xhi - xlo) * self.scale
        h = (yhi - ylo) * self.scale
        body = (
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" fill="{fill}" '
            f'fill-opacity="{opacity}" stroke="{stroke}" '
            'stroke-width="0.5"'
        )
        if title:
            self.parts.append(f"{body}><title>{title}</title></rect>")
        else:
            self.parts.append(body + "/>")

    def line(self, x1, y1, x2, y2, stroke, width=1.5, opacity=1.0):
        self.parts.append(
            f'<line x1="{self._x(x1):.1f}" y1="{self._y(y1):.1f}" '
            f'x2="{self._x(x2):.1f}" y2="{self._y(y2):.1f}" '
            f'stroke="{stroke}" stroke-width="{width}" '
            f'stroke-opacity="{opacity}"/>'
        )

    def to_string(self) -> str:
        return "\n".join(self.parts + ["</svg>"]) + "\n"


def render_design_svg(
    design: Design,
    *,
    scale: float = 0.08,
    show_pins: bool = True,
) -> str:
    """Render the placement: rows, cells (colored by function family,
    hatched when flipped) and pin access shapes."""
    canvas = _SvgCanvas(design, scale)
    tech = design.tech
    # Alternating row shading.
    for row in range(design.num_rows):
        if row % 2:
            canvas.rect(
                design.die.xlo,
                design.die.ylo + row * tech.row_height,
                design.die.xhi,
                design.die.ylo + (row + 1) * tech.row_height,
                fill="#f5f5f5",
            )
    for name, inst in sorted(design.instances.items()):
        bbox = inst.bbox
        canvas.rect(
            bbox.xlo,
            bbox.ylo,
            bbox.xhi,
            bbox.yhi,
            fill=_family_color(inst.macro.spec.function),
            opacity=0.85,
            stroke="#555555",
            title=f"{name} ({inst.macro.name}, "
            f"{inst.orientation.value})",
        )
        if inst.flipped:
            canvas.line(
                bbox.xlo, bbox.ylo, bbox.xhi, bbox.yhi,
                stroke="#555555", width=0.5, opacity=0.6,
            )
        if show_pins:
            for pin in inst.macro.signal_pins:
                pos = inst.pin_position(pin.name)
                iv = inst.pin_x_interval(pin.name)
                if iv.length:
                    canvas.line(
                        iv.lo, pos.y, iv.hi, pos.y,
                        stroke="#1f4e79", width=1.0,
                    )
                else:
                    canvas.line(
                        pos.x, pos.y - 40, pos.x, pos.y + 40,
                        stroke="#1f4e79", width=1.0,
                    )
    return canvas.to_string()


def render_routes_svg(
    design: Design,
    router: DetailedRouter,
    *,
    scale: float = 0.08,
) -> str:
    """Render the routing view from a completed router run: direct
    vertical M1 routes (green), jogged M1 routes (orange) and
    overflowed gcell edges (red heat)."""
    if router.last_grid is None:
        raise ValueError("router has not routed yet")
    canvas = _SvgCanvas(design, scale)
    grid = router.last_grid

    # Congestion heat first (underlay).
    for ey in range(grid.usage_h.shape[0]):
        for ex in range(grid.usage_h.shape[1]):
            over = grid.usage_h[ey, ex] - grid.cap_h
            if over > 0:
                a = grid.center(ex, ey)
                b = grid.center(ex + 1, ey)
                canvas.line(
                    a.x, a.y, b.x, b.y, stroke="#d62728",
                    width=2.0 + over, opacity=0.5,
                )
    for ey in range(grid.usage_v.shape[0]):
        for ex in range(grid.usage_v.shape[1]):
            over = grid.usage_v[ey, ex] - grid.cap_v
            if over > 0:
                a = grid.center(ex, ey)
                b = grid.center(ex, ey + 1)
                canvas.line(
                    a.x, a.y, b.x, b.y, stroke="#d62728",
                    width=2.0 + over, opacity=0.5,
                )

    for inst in design.instances.values():
        bbox = inst.bbox
        canvas.rect(
            bbox.xlo, bbox.ylo, bbox.xhi, bbox.yhi,
            fill="#eeeeee", opacity=0.6, stroke="#cccccc",
        )

    for route in router.last_m1_routes:
        a = route.subnet.a.point
        b = route.subnet.b.point
        color = "#2ca02c" if route.direct else "#ff7f0e"
        canvas.line(a.x, a.y, b.x, b.y, stroke=color, width=1.6)
    return canvas.to_string()
