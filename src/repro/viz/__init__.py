"""Layout visualization (SVG).

Renders placements, pin geometry, direct vertical M1 routes and
congestion overlays as standalone SVG files — the debugging view the
paper's screenshots (Figures 2 and 8) come from.
"""

from repro.viz.svg import render_design_svg, render_routes_svg

__all__ = ["render_design_svg", "render_routes_svg"]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.viz")
