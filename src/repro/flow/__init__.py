"""End-to-end flow: generate → place → route → optimize → re-route.

This mirrors the paper's evaluation flow (synthesize with DC, P&R with
Innovus, optimize with the proposed tool, ECO-route, compare), with
every stage provided by this repository's substrates.
"""

from repro.flow.flow import FlowConfig, FlowResult, run_flow, table2_row

__all__ = ["FlowConfig", "FlowResult", "run_flow", "table2_row"]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.flow")
