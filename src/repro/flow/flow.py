"""Flow orchestration and Table 2 row extraction."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.params import OptParams, ParamSet
from repro.core.vm1opt import VM1OptResult, vm1_opt
from repro.obs.trace import active as active_tracer
from repro.obs.trace import span
from repro.runtime import RunTelemetry, make_executor
from repro.library import Library, build_library
from repro.netlist import Design, generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter, RouteMetrics, RouterConfig
from repro.shard.partition import resolve_shard_count
from repro.shard.runner import ShardRunResult, run_sharded
from repro.tech import CellArchitecture, Technology, make_tech
from repro.timing import (
    PowerReport,
    TimingReport,
    analyze_timing,
    estimate_power,
)


@dataclass
class FlowConfig:
    """Configuration for one end-to-end run.

    Attributes:
        profile: benchmark profile name (``m0``/``aes``/``jpeg``/
            ``vga``) or a DesignProfile.
        arch: cell architecture (selects library + MILP formulation).
        scale: instance-count scale; 1.0 = paper-size (see DESIGN.md
            on default scaling for Python/HiGHS tractability).
        utilization: placement utilization target.
        seed: RNG seed for generation and placement.
        params: optimizer parameters; None = paper defaults for the
            architecture with ``window_um`` square windows.
        window_um: window size used when ``params`` is None.
        lx/ly: perturbation range used when ``params`` is None.
        router: router configuration shared by init/final routing.
        optimize: run VM1Opt (False = route-only baseline run).
        timing_driven: derive per-net β weights from the initial STA
            (criticality-weighted HPWL — the paper's §6 future work
            (ii)); ignored when ``params`` is supplied explicitly.
        executor: window-solve executor kind (``serial`` / ``thread``
            / ``process`` / ``auto``; see :mod:`repro.runtime`).
        jobs: worker count for pool executors; 1 = serial.
        presolve: run the window-model presolve reductions before
            every solve (behaviour-preserving speedup).
        window_cache: skip windows unchanged since their last
            fixpoint solve (behaviour-preserving speedup).
        dirty_tracking: incremental convergence engine — skip windows
            whose probe neighborhood no applied move has touched since
            their last verified fixpoint, and delta-account the pass
            objective instead of re-sweeping all nets
            (behaviour-preserving speedup; see DESIGN.md §11).
        shards: region-shard count for full-chip scale-out — a
            positive int or ``"auto"`` (sized from the design and
            ``jobs``; see :func:`repro.shard.resolve_shard_count`).
            ``1`` (the default) runs the classic unsharded optimizer
            and is byte-identical to releases without the shard layer.
        halo_rows: frozen ghost rows around each shard's core band
            (ignored when the resolved shard count is 1).
    """

    profile: str = "aes"
    arch: CellArchitecture = CellArchitecture.CLOSED_M1
    scale: float = 0.05
    utilization: float = 0.75
    seed: int = 1
    params: OptParams | None = None
    window_um: float = 1.25
    lx: int = 4
    ly: int = 1
    time_limit: float = 5.0
    router: RouterConfig = field(default_factory=RouterConfig)
    optimize: bool = True
    timing_driven: bool = False
    executor: str = "auto"
    jobs: int = 1
    presolve: bool = True
    window_cache: bool = True
    dirty_tracking: bool = True
    shards: int | str = 1
    halo_rows: int = 2

    def resolved_params(self, tech: Technology) -> OptParams:
        if self.params is not None:
            return self.params
        return OptParams.for_arch(
            self.arch,
            sequence=(
                ParamSet.square(self.window_um, self.lx, self.ly),
            ),
            time_limit=self.time_limit,
        )


@dataclass
class FlowResult:
    """Everything one flow run produced."""

    config: FlowConfig
    design: Design
    library: Library
    init_route: RouteMetrics
    init_timing: TimingReport
    init_power: PowerReport
    opt: VM1OptResult | None = None
    #: populated only when the run actually sharded (resolved >= 2);
    #: ``opt`` then holds ``shard.to_vm1_result()``.
    shard: "ShardRunResult | None" = None
    final_route: RouteMetrics | None = None
    final_timing: TimingReport | None = None
    final_power: PowerReport | None = None
    telemetry: RunTelemetry | None = None
    place_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def num_instances(self) -> int:
        return len(self.design.instances)


def run_flow(
    config: FlowConfig,
    *,
    progress=None,
    checkpoint_sink=None,
    resume=None,
    shard_checkpoint_dir=None,
    shard_resume=False,
) -> FlowResult:
    """Run the complete flow described by ``config``.

    Args:
        config: flow configuration.
        progress: optional callable ``(stage, info)`` invoked at stage
            boundaries (``generate`` / ``place`` / ``route_init`` /
            ``route_final``) and after every DistOpt pass (stage
            ``pass``, with the pass's ``repro.runtime.telemetry/v2``
            entry as ``info``).  A ``progress`` callback may raise to
            abort the run cooperatively (the service uses this for
            cancellation and graceful shutdown); the raise happens
            *after* the pass checkpoint was handed to
            ``checkpoint_sink``, so the abort point is always
            resumable.
        checkpoint_sink: optional callable receiving a
            :class:`~repro.core.checkpoint.VM1Checkpoint` after every
            completed DistOpt pass.
        resume: optional checkpoint to continue from.  Generation,
            placement, and the initial route re-run (they are
            deterministic in ``config.seed``); the optimizer then
            restores the checkpointed placement and skips every
            already-completed pass, finishing with a placement
            byte-identical to an uninterrupted run.
        shard_checkpoint_dir: directory for shard-granular crash-safe
            state when the run shards (resolved ``config.shards`` >=
            2); see :class:`repro.shard.ShardCheckpointStore`.
            ``checkpoint_sink``/``resume`` govern the unsharded path,
            this pair governs the sharded one.
        shard_resume: continue a sharded run from
            ``shard_checkpoint_dir`` (finished shards fast-forward,
            the interrupted shard resumes from its pass checkpoint).

    A sharded run reports extra ``progress`` stages (``shard_plan`` /
    ``shard`` / ``seam`` / ``stitch``) instead of per-pass entries,
    and fills ``FlowResult.shard``.
    """
    started = time.perf_counter()
    with span(
        "flow",
        profile=str(config.profile),
        arch=config.arch.value,
        scale=config.scale,
        seed=config.seed,
        executor=config.executor,
        jobs=config.jobs,
        resumed=resume is not None or shard_resume,
    ) as flow_span:
        with span("generate") as stage:
            tech = make_tech(config.arch)
            library = build_library(tech)
            design = generate_design(
                config.profile,
                tech,
                library,
                scale=config.scale,
                utilization=config.utilization,
                seed=config.seed,
            )
            stage.set(
                instances=len(design.instances),
                nets=len(design.nets),
            )
        if progress is not None:
            progress(
                "generate",
                {
                    "design": design.name,
                    "instances": len(design.instances),
                    "nets": len(design.nets),
                },
            )
        t_place = time.perf_counter()
        with span("place"):
            place_design(design, seed=config.seed)
        place_seconds = time.perf_counter() - t_place
        if progress is not None:
            progress("place", {"seconds": place_seconds})

        with span("route_init") as stage:
            router = DetailedRouter(design, config.router)
            init_route = router.route()
            init_timing = analyze_timing(
                design, init_route.net_lengths
            )
            init_power = estimate_power(
                design, init_route.net_lengths
            )
            stage.set(
                num_drvs=init_route.num_drvs,
                num_dm1=init_route.num_dm1,
            )
        if progress is not None:
            progress(
                "route_init",
                {
                    "num_drvs": init_route.num_drvs,
                    "hpwl": init_route.hpwl,
                    "num_dm1": init_route.num_dm1,
                },
            )

        result = FlowResult(
            config=config,
            design=design,
            library=library,
            init_route=init_route,
            init_timing=init_timing,
            init_power=init_power,
            place_seconds=place_seconds,
        )
        if config.optimize:
            params = config.resolved_params(tech)
            if config.timing_driven and config.params is None:
                from dataclasses import replace

                from repro.timing.criticality import criticality_weights

                params = replace(
                    params,
                    net_beta=criticality_weights(design, init_timing),
                )
            num_shards = resolve_shard_count(
                design, config.shards, config.jobs, config.halo_rows
            )
            with span("opt", shards=num_shards):
                if num_shards >= 2:
                    result.shard = run_sharded(
                        design,
                        params,
                        shards=num_shards,
                        halo_rows=config.halo_rows,
                        jobs=config.jobs,
                        executor=config.executor,
                        presolve=config.presolve,
                        window_cache=config.window_cache,
                        dirty_tracking=config.dirty_tracking,
                        checkpoint_dir=shard_checkpoint_dir,
                        resume=shard_resume,
                        progress=progress,
                    )
                    result.opt = result.shard.to_vm1_result()
                else:
                    result.opt = _run_unsharded(
                        config,
                        design,
                        params,
                        result,
                        progress=progress,
                        checkpoint_sink=checkpoint_sink,
                        resume=resume,
                    )
            with span("route_final") as stage:
                final_router = DetailedRouter(design, config.router)
                result.final_route = final_router.route()
                result.final_timing = analyze_timing(
                    design,
                    result.final_route.net_lengths,
                    clock_period_ps=init_timing.clock_period_ps,
                )
                result.final_power = estimate_power(
                    design, result.final_route.net_lengths
                )
                stage.set(
                    num_drvs=result.final_route.num_drvs,
                    num_dm1=result.final_route.num_dm1,
                )
            if progress is not None:
                progress(
                    "route_final",
                    {
                        "num_drvs": result.final_route.num_drvs,
                        "hpwl": result.final_route.hpwl,
                        "num_dm1": result.final_route.num_dm1,
                    },
                )
        flow_span.set(instances=len(design.instances))
    result.total_seconds = time.perf_counter() - started
    return result


def _run_unsharded(
    config: FlowConfig,
    design: Design,
    params: OptParams,
    result: FlowResult,
    *,
    progress,
    checkpoint_sink,
    resume,
) -> VM1OptResult:
    """The classic single-region optimizer path (shards resolved to 1).

    Kept as its own function so the sharded branch cannot perturb it:
    this path is what every byte-identity expectation in the test
    suite pins.
    """
    with make_executor(config.executor, config.jobs) as executor:
        telemetry = RunTelemetry(
            executor=executor.name, jobs=executor.jobs
        )
        tracer = active_tracer()
        if tracer is not None:
            telemetry.trace_id = tracer.trace_id
        vm1_progress = None
        if progress is not None:

            def vm1_progress(kind, pass_result):
                entry = (
                    dict(telemetry.passes[-1])
                    if telemetry.passes
                    else {}
                )
                entry["kind"] = kind
                progress("pass", entry)

        opt = vm1_opt(
            design,
            params,
            executor=executor,
            telemetry=telemetry,
            progress=vm1_progress,
            presolve=config.presolve,
            window_cache=config.window_cache,
            dirty_tracking=config.dirty_tracking,
            checkpoint_sink=checkpoint_sink,
            resume=resume,
        )
        result.telemetry = telemetry
    return opt


def _pct(init: float, final: float) -> float:
    return 100.0 * (final - init) / init if init else 0.0


def table2_row(result: FlowResult) -> dict[str, float | str]:
    """One Table 2 row (init/final/Δ% per metric) from a flow run."""
    init = result.init_route
    final = result.final_route
    if final is None:
        raise ValueError("flow ran without optimization")
    um = result.design.tech.dbu_per_micron
    return {
        "design": result.config.profile,
        "arch": result.config.arch.value,
        "#inst": result.num_instances,
        "util": result.config.utilization,
        "#dM1 init": init.num_dm1,
        "#dM1 final": final.num_dm1,
        "#dM1 %": _pct(max(init.num_dm1, 1), final.num_dm1),
        "M1WL init (um)": init.m1_wirelength / um,
        "M1WL final (um)": final.m1_wirelength / um,
        "M1WL %": _pct(init.m1_wirelength, final.m1_wirelength),
        "#via12 init": init.num_via12,
        "#via12 final": final.num_via12,
        "#via12 %": _pct(init.num_via12, final.num_via12),
        "HPWL init (um)": init.hpwl / um,
        "HPWL final (um)": final.hpwl / um,
        "HPWL %": _pct(init.hpwl, final.hpwl),
        "RWL init (um)": init.routed_wirelength / um,
        "RWL final (um)": final.routed_wirelength / um,
        "RWL %": _pct(init.routed_wirelength, final.routed_wirelength),
        "WNS init (ns)": result.init_timing.wns_ns,
        "WNS final (ns)": (
            result.final_timing.wns_ns if result.final_timing else 0.0
        ),
        "power init (mW)": result.init_power.total_mw,
        "power final (mW)": (
            result.final_power.total_mw if result.final_power else 0.0
        ),
        "power %": _pct(
            result.init_power.total_mw,
            result.final_power.total_mw if result.final_power else 0.0,
        ),
        "#DRV init": init.num_drvs,
        "#DRV final": final.num_drvs,
        "runtime (s)": result.opt.wall_seconds if result.opt else 0.0,
        "runtime parallel-model (s)": (
            result.opt.modeled_parallel_seconds if result.opt else 0.0
        ),
        "runtime parallel-measured (s)": (
            result.opt.measured_parallel_seconds if result.opt else 0.0
        ),
    }
