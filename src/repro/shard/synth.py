"""Deterministic large-design synthesis for scale-out benchmarking.

The four Table-2 profiles top out at ~68k instances and were tuned to
mirror specific netlists.  Scale-out work needs a *family* of designs
whose size is the independent variable — 10k to 100k+ cells — with
connectivity that stays realistic as N grows.  :func:`scale_profile`
derives a :class:`~repro.netlist.generator.DesignProfile` for an
arbitrary instance count from Rent's rule:

* **Locality** — the mean structural driver distance follows
  ``N**(p-1)`` for Rent exponent ``p`` (Landman & Russo; for p < 1 the
  *relative* neighborhood shrinks as designs grow, which is exactly
  Cong et al.'s locality observation that makes region sharding work).
* **IO count** — the terminal form ``T = t * N**p`` with t ≈ 2.5.

Generation itself goes through the standard
:func:`repro.netlist.generator.generate_design`, which switches to
the vectorized bucketed wiring path above ~20k gates, so a 50k-cell
design synthesizes in well under a second.
"""

from __future__ import annotations

from repro.library.library import Library
from repro.netlist.design import Design
from repro.netlist.generator import (
    _BASE_MIX,
    DesignProfile,
    generate_design,
)
from repro.tech.technology import Technology

#: Default Rent exponent for the synthetic scale family (typical for
#: random logic; memories/datapaths run lower, crossbars higher).
RENT_EXPONENT = 0.6
#: Rent terminal coefficient (average terminals per gate).
RENT_T = 2.5

#: Reference size at which the scale family's locality matches the
#: hand-tuned ``aes`` profile.
_REFERENCE_N = 12_345
_REFERENCE_LOCALITY = 0.02


def scale_profile(
    num_instances: int,
    *,
    rent_exponent: float = RENT_EXPONENT,
    seq_fraction: float = 0.18,
    name: str | None = None,
) -> DesignProfile:
    """Profile for a ``num_instances``-cell design with Rent-like
    connectivity.

    Anchored so that ``scale_profile(12_345)`` reproduces the ``aes``
    profile's locality; other sizes follow the ``N**(p-1)`` law.
    """
    if num_instances < 8:
        raise ValueError(
            f"num_instances must be >= 8, got {num_instances}"
        )
    if not 0.0 < rent_exponent < 1.0:
        raise ValueError(
            f"rent_exponent must be in (0, 1), got {rent_exponent}"
        )
    locality = _REFERENCE_LOCALITY * (
        num_instances / _REFERENCE_N
    ) ** (rent_exponent - 1.0)
    io_count = max(8, round(RENT_T * num_instances**rent_exponent))
    if name is None:
        if num_instances % 1000 == 0:
            name = f"synth{num_instances // 1000}k"
        else:
            name = f"synth{num_instances}"
    return DesignProfile(
        name=name,
        instances=num_instances,
        seq_fraction=seq_fraction,
        mix=dict(_BASE_MIX),
        locality=locality,
        io_count=io_count,
    )


def generate_scaled_design(
    num_instances: int,
    tech: Technology,
    library: Library,
    *,
    utilization: float = 0.75,
    seed: int = 1,
    rent_exponent: float = RENT_EXPONENT,
) -> Design:
    """Generate an unplaced ``num_instances``-cell benchmark.

    Fully deterministic in ``(num_instances, rent_exponent, seed)``.
    """
    return generate_design(
        scale_profile(num_instances, rent_exponent=rent_exponent),
        tech,
        library,
        scale=1.0,
        utilization=utilization,
        seed=seed,
    )
