"""Seam reconciliation: merge shard placements and heal the seams.

Merging is a plain placement copy-back — shard sub-designs share
instance names with the parent (see
:func:`repro.shard.partition.extract_shard_design`), every movable
cell stayed inside its own core band, and the cores tile the die, so
the merged placement is overlap-free by construction.

What merging cannot fix is seam *quality*: cells in the boundary rows
were optimized against frozen ghost neighbors, so improving moves that
need both sides of a seam to cooperate were out of reach.  The seam
pass runs one more DistOpt over the full design restricted to the
windows that straddle a seam (within the halo margin), letting both
sides co-optimize with the real, post-shard positions.  It reuses the
standard window machinery — independent families, guarded applies —
so it can only improve the objective and always preserves legality.

The stitched result is finally verified with the independent
:mod:`repro.check` oracle (plus the production checker); a non-empty
error list means a shard-layer bug, not a noisy solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check.oracle import check_legal as oracle_check_legal
from repro.core.dirty import DirtyTracker
from repro.core.distopt import DistOptResult, dist_opt
from repro.core.params import OptParams
from repro.core.window import Window
from repro.netlist.design import Design
from repro.shard.partition import ShardPlan

#: Reconciliation perturbation range (sites) — seam moves are local.
SEAM_LX = 3
#: Reconciliation perturbation range (rows).
SEAM_LY = 1


@dataclass
class StitchResult:
    """Outcome of merge + seam reconciliation + verification."""

    cells_merged: int = 0
    seam_windows: int = 0
    seam_pass: DistOptResult | None = None
    verify_errors: list[str] = field(default_factory=list)

    @property
    def legal(self) -> bool:
        return not self.verify_errors


def merge_shard_placements(
    design: Design,
    placements: dict[str, tuple[int, int, str]],
) -> int:
    """Copy shard placements (name -> (x, y, orient)) back; returns
    the number of cells whose placement actually changed."""
    from repro.geometry import Orientation

    moved = 0
    for name, (x, y, orient_value) in placements.items():
        inst = design.instances[name]
        orient = Orientation(orient_value)
        if (inst.x, inst.y, inst.orientation) != (x, y, orient):
            moved += 1
        inst.x, inst.y = int(x), int(y)
        inst.orientation = orient
    return moved


def seam_window_filter(design: Design, plan: ShardPlan):
    """Predicate selecting windows within the halo margin of a seam."""
    rh = design.tech.row_height
    margin = max(1, plan.halo_rows) * rh
    seams = plan.seam_ys

    def accept(window: Window) -> bool:
        rect = window.rect
        return any(
            rect.ylo < y + margin and rect.yhi > y - margin
            for y in seams
        )

    return accept


def seam_dirty_tracker(
    design: Design, plan: ShardPlan
) -> DirtyTracker:
    """A default-clean tracker seeded with the seam bands.

    After a sharded run, only the seam neighborhoods hold placements
    that were optimized against stale (frozen-ghost) context — the
    shard interiors are genuine fixpoints of their own runs.  Seeding
    the stitch boundaries as the only dirty regions encodes exactly
    the restriction :func:`seam_window_filter` applies, as dirty-state
    the incremental engine can also maintain *through* the pass
    (applied seam moves extend the dirty set).
    """
    rh = design.tech.row_height
    margin = max(1, plan.halo_rows) * rh
    die = design.die
    return DirtyTracker(
        seed_dirty=[
            (die.xlo, y - margin, die.xhi, y + margin)
            for y in plan.seam_ys
        ]
    )


def run_seam_pass(
    design: Design,
    params: OptParams,
    plan: ShardPlan,
    *,
    executor=None,
    telemetry=None,
    presolve: bool = True,
    dirty_tracking: bool = True,
) -> DistOptResult:
    """One boundary-window DistOpt pass over every seam.

    Window geometry comes from the last parameter set of ``params``
    (the finest grid the shards themselves finished with); the grid is
    phase-shifted by half a window vertically so that windows straddle
    the seams instead of abutting them.  With ``dirty_tracking`` the
    pass also carries a :func:`seam_dirty_tracker` seeded from the
    stitch boundaries, so any window the filter admits whose probe
    neighborhood lies outside every seam band is skipped pre-build.
    """
    tech = design.tech
    u = params.sequence[-1]
    bw = max(tech.site_width, tech.dbu(u.bw_um))
    bh = max(tech.row_height, tech.dbu(u.bh_um))
    return dist_opt(
        design,
        params,
        tx=0,
        ty=(bh // 2 // tech.row_height) * tech.row_height,
        bw=bw,
        bh=bh,
        lx=SEAM_LX,
        ly=SEAM_LY,
        allow_flip=False,
        executor=executor,
        telemetry=telemetry,
        pass_label="seam",
        presolve=presolve,
        window_filter=seam_window_filter(design, plan),
        dirty=(
            seam_dirty_tracker(design, plan)
            if dirty_tracking
            else None
        ),
    )


def verify_stitched(design: Design) -> list[str]:
    """Independent + production legality check of the merged design."""
    errors = [f"oracle: {msg}" for msg in oracle_check_legal(design)]
    errors.extend(
        f"production: {msg}" for msg in design.check_legal()
    )
    return errors
