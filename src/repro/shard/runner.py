"""Shard execution engine: full-chip VM1Opt as independent shard runs.

One :class:`ShardTask` is the unit of distribution — a pickled shard
sub-design plus optimizer parameters — executed through the existing
:mod:`repro.runtime` executors (the executors call ``task.run()``, so
shard tasks ride the same Serial/Thread/Multiprocess machinery window
tasks do, one level up).  Worker budgeting is two-tier: ``jobs``
workers are first spent process-parallel *across* shards, and any
remainder window-parallel *within* each shard (threads inside pool
workers — HiGHS releases the GIL during the native solve).

Crash safety reuses :class:`repro.core.checkpoint.VM1Checkpoint`
verbatim: every shard's ``vm1_opt`` streams per-pass checkpoints into
a :class:`ShardCheckpointStore` directory; finished shards leave an
atomic ``done`` record with their final core placement.  A SIGKILL
mid-chip therefore resumes at shard granularity — completed shards
fast-forward from their done records, the interrupted shard resumes
from its last pass checkpoint (byte-identical by the PR-4 resume
contract), and untouched shards start fresh.  The seam pass is cheap
and deterministic, so it is simply re-run on resume.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.chaos.inject import active_chaos
from repro.chaos.inject import barrier as chaos_barrier
from repro.core.checkpoint import VM1Checkpoint
from repro.core.objective import calculate_objective
from repro.core.params import OptParams
from repro.core.vm1opt import VM1OptResult, vm1_opt
from repro.netlist.design import Design
from repro.obs.trace import active as active_tracer
from repro.obs.trace import collecting, current_context, span
from repro.runtime import make_executor
from repro.shard.partition import (
    NetClassification,
    ShardPlan,
    classify_nets,
    extract_shard_design,
    plan_shards,
    verify_plan,
)
from repro.shard.stitch import (
    StitchResult,
    merge_shard_placements,
    run_seam_pass,
    verify_stitched,
)

#: Schema of the per-shard ``done`` record.
DONE_SCHEMA = "repro.shard.done/v1"
#: Schema of the plan fingerprint file.
PLAN_SCHEMA = "repro.shard.plan/v1"


class ShardPlanError(ValueError):
    """The partition failed its independence proof."""


class StitchVerificationError(RuntimeError):
    """The stitched placement failed oracle/production verification."""


@dataclass
class ShardOutcome:
    """What one shard run hands back across the process boundary."""

    index: int
    #: owned (core) instance name -> (x, y, DEF orientation string).
    placements: dict[str, tuple[int, int, str]]
    initial_objective: float
    final_objective: float
    iterations: int = 0
    moved_cells: int = 0
    wall_seconds: float = 0.0
    solve_seconds: float = 0.0
    modeled_parallel_seconds: float = 0.0
    windows_failed: int = 0
    windows_timed_out: int = 0
    windows_cached: int = 0
    resumed: bool = False
    #: span dicts collected inside the shard worker when the task
    #: carried a trace context; they ride the ``done`` record so a
    #: resumed run keeps the finished shard's trace without re-running
    #: it, and the submitting side absorbs them in shard order.
    spans: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "schema": DONE_SCHEMA,
            "index": self.index,
            "placements": {
                name: list(state)
                for name, state in self.placements.items()
            },
            "initial_objective": self.initial_objective,
            "final_objective": self.final_objective,
            "iterations": self.iterations,
            "moved_cells": self.moved_cells,
            "wall_seconds": self.wall_seconds,
            "solve_seconds": self.solve_seconds,
            "modeled_parallel_seconds": self.modeled_parallel_seconds,
            "windows_failed": self.windows_failed,
            "windows_timed_out": self.windows_timed_out,
            "windows_cached": self.windows_cached,
            "resumed": self.resumed,
            "spans": list(self.spans),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ShardOutcome":
        if doc.get("schema") != DONE_SCHEMA:
            raise ValueError(
                f"unsupported shard done schema {doc.get('schema')!r}"
            )
        return cls(
            index=int(doc["index"]),
            placements={
                name: (int(x), int(y), str(orient))
                for name, (x, y, orient) in doc["placements"].items()
            },
            initial_objective=float(doc["initial_objective"]),
            final_objective=float(doc["final_objective"]),
            iterations=int(doc["iterations"]),
            moved_cells=int(doc["moved_cells"]),
            wall_seconds=float(doc["wall_seconds"]),
            solve_seconds=float(doc["solve_seconds"]),
            modeled_parallel_seconds=float(
                doc["modeled_parallel_seconds"]
            ),
            windows_failed=int(doc["windows_failed"]),
            windows_timed_out=int(doc["windows_timed_out"]),
            windows_cached=int(doc["windows_cached"]),
            resumed=bool(doc.get("resumed", False)),
            spans=list(doc.get("spans", [])),
        )


@dataclass
class ShardTask:
    """Picklable shard work unit; ``run()`` executes in any executor."""

    task_id: int
    index: int
    design_blob: bytes = field(repr=False)
    owned: tuple[str, ...]
    params: OptParams
    inner_executor: str = "serial"
    inner_jobs: int = 1
    presolve: bool = True
    window_cache: bool = True
    dirty_tracking: bool = True
    checkpoint_path: str | None = None
    resume_doc: dict | None = None
    #: ``(trace_id, parent_span_id)`` from the submitting side; the
    #: worker collects its whole ``vm1_opt`` span subtree under it.
    trace: tuple[str, str | None] | None = None
    #: serialized :class:`~repro.chaos.plan.FaultPlan` document; the
    #: worker rebuilds a local controller from it (controllers do not
    #: cross process boundaries), so shard-level faults — mid-shard
    #: death at ``shard:<n>:start``/``shard:<n>:done`` barriers, plus
    #: every window-level site inside the shard's vm1_opt — fire
    #: deterministically under any executor.
    chaos: dict | None = None

    def run(self) -> ShardOutcome:
        if self.chaos is None:
            return self._execute()
        from repro.chaos.inject import ChaosController, chaos_scope
        from repro.chaos.plan import FaultPlan

        controller = ChaosController(
            plan=FaultPlan.from_dict(self.chaos)
        )
        with chaos_scope(controller):
            return self._execute()

    def _execute(self) -> ShardOutcome:
        design: Design = pickle.loads(self.design_blob)
        resume = (
            VM1Checkpoint.from_dict(self.resume_doc)
            if self.resume_doc is not None
            else None
        )
        sink = None
        if self.checkpoint_path is not None:
            path = self.checkpoint_path

            def sink(cp: VM1Checkpoint) -> None:
                _atomic_write(Path(path), cp.dumps())

        chaos_barrier(f"shard:{self.index}:start")
        started = time.perf_counter()
        with collecting(self.trace) as trace_collector:
            with span("shard", index=self.index):
                with make_executor(
                    self.inner_executor, self.inner_jobs
                ) as ex:
                    result = vm1_opt(
                        design,
                        self.params,
                        executor=ex,
                        presolve=self.presolve,
                        window_cache=self.window_cache,
                        dirty_tracking=self.dirty_tracking,
                        checkpoint_sink=sink,
                        resume=resume,
                    )
        wall = time.perf_counter() - started
        # After the work, before the outcome crosses back: a death
        # here loses the shard's result but not its checkpoints.
        chaos_barrier(f"shard:{self.index}:done")
        return ShardOutcome(
            index=self.index,
            placements={
                name: (
                    design.instances[name].x,
                    design.instances[name].y,
                    design.instances[name].orientation.value,
                )
                for name in self.owned
            },
            initial_objective=result.initial_objective,
            final_objective=result.final_objective,
            iterations=result.iterations,
            moved_cells=result.moved_cells,
            wall_seconds=wall,
            solve_seconds=result.solve_seconds,
            modeled_parallel_seconds=result.modeled_parallel_seconds,
            windows_failed=result.windows_failed,
            windows_timed_out=result.windows_timed_out,
            windows_cached=result.windows_cached,
            resumed=resume is not None,
            spans=trace_collector.export(),
        )


def _atomic_write(path: Path, text: str) -> None:
    """Same-directory tmp + rename, the torn-write-safe idiom."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class ShardCheckpointStore:
    """On-disk shard-granular resume state for one sharded run.

    Layout under ``root``::

        plan.json                  run fingerprint (refuses mismatched
                                   resumes)
        shard_000.ckpt.json        last per-pass VM1Checkpoint of the
                                   shard still running (atomic)
        shard_000.done.json        final ShardOutcome of a finished
                                   shard (atomic; supersedes the ckpt)
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _plan_path(self) -> Path:
        return self.root / "plan.json"

    def ckpt_path(self, index: int) -> Path:
        return self.root / f"shard_{index:03d}.ckpt.json"

    def done_path(self, index: int) -> Path:
        return self.root / f"shard_{index:03d}.done.json"

    def fingerprint(
        self, design: Design, num_shards: int, halo_rows: int
    ) -> dict:
        return {
            "schema": PLAN_SCHEMA,
            "design": design.name,
            "instances": len(design.instances),
            "shards": num_shards,
            "halo_rows": halo_rows,
        }

    def begin(
        self,
        design: Design,
        num_shards: int,
        halo_rows: int,
        *,
        resume: bool,
    ) -> bool:
        """Prepare the store; returns True when resuming prior state.

        A fresh run (or a fingerprint mismatch with ``resume=False``)
        clears stale shard files; ``resume=True`` against a mismatched
        fingerprint raises instead of silently mixing two runs.
        """
        want = self.fingerprint(design, num_shards, halo_rows)
        have: dict | None = None
        if self._plan_path().exists():
            try:
                have = json.loads(self._plan_path().read_text())
            except (OSError, json.JSONDecodeError):
                have = None
        if resume and have == want:
            return True
        if resume and have is not None and have != want:
            raise ValueError(
                f"shard checkpoint dir {self.root} belongs to a "
                f"different run: {have} != {want}"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        for stale in self.root.glob("shard_*.json"):
            stale.unlink()
        _atomic_write(self._plan_path(), json.dumps(want, indent=1))
        return False

    def load_done(self, index: int) -> ShardOutcome | None:
        path = self.done_path(index)
        if not path.exists():
            return None
        return ShardOutcome.from_dict(json.loads(path.read_text()))

    def write_done(self, outcome: ShardOutcome) -> None:
        _atomic_write(
            self.done_path(outcome.index),
            json.dumps(outcome.to_dict()),
        )
        # The pass-level checkpoint is superseded by the done record.
        self.ckpt_path(outcome.index).unlink(missing_ok=True)

    def load_resume_doc(self, index: int) -> dict | None:
        path = self.ckpt_path(index)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None  # torn write of a non-atomic ancestor — restart


@dataclass
class ShardRunResult:
    """Everything one sharded VM1Opt run produced."""

    num_shards: int
    halo_rows: int
    initial_objective: float
    final_objective: float
    plan: ShardPlan | None = None
    nets: NetClassification | None = None
    outcomes: list[ShardOutcome] = field(default_factory=list)
    stitch: StitchResult | None = None
    direct: VM1OptResult | None = None  # the shards == 1 fast path
    wall_seconds: float = 0.0
    shard_wall_seconds: float = 0.0
    shard_executor: str = "serial"
    shard_workers: int = 1
    inner_executor: str = "serial"
    inner_jobs: int = 1
    resumed_shards: int = 0

    @property
    def improvement(self) -> float:
        if self.initial_objective == 0:
            return 0.0
        return (
            self.initial_objective - self.final_objective
        ) / abs(self.initial_objective)

    def to_vm1_result(self) -> VM1OptResult:
        """Aggregate view compatible with the unsharded flow result."""
        if self.direct is not None:
            return self.direct
        result = VM1OptResult(
            initial_objective=self.initial_objective,
            final_objective=self.final_objective,
        )
        result.wall_seconds = self.wall_seconds
        result.iterations = max(
            (o.iterations for o in self.outcomes), default=0
        )
        result.moved_cells = sum(o.moved_cells for o in self.outcomes)
        result.solve_seconds = sum(
            o.solve_seconds for o in self.outcomes
        )
        # An unbounded machine runs shards concurrently: the modeled
        # parallel time is the slowest shard's, plus the seam pass.
        result.modeled_parallel_seconds = max(
            (o.modeled_parallel_seconds for o in self.outcomes),
            default=0.0,
        )
        result.measured_parallel_seconds = self.shard_wall_seconds
        result.windows_failed = sum(
            o.windows_failed for o in self.outcomes
        )
        result.windows_timed_out = sum(
            o.windows_timed_out for o in self.outcomes
        )
        result.windows_cached = sum(
            o.windows_cached for o in self.outcomes
        )
        if self.stitch is not None and self.stitch.seam_pass is not None:
            seam = self.stitch.seam_pass
            result.passes.append(seam)
            result.moved_cells += seam.moved_cells
            result.solve_seconds += seam.solve_seconds
            result.modeled_parallel_seconds += (
                seam.modeled_parallel_seconds
            )
            result.measured_parallel_seconds += (
                seam.measured_parallel_seconds
            )
        return result

    def summary(self) -> dict:
        """JSON-friendly digest for events/telemetry."""
        return {
            "num_shards": self.num_shards,
            "halo_rows": self.halo_rows,
            "initial_objective": self.initial_objective,
            "final_objective": self.final_objective,
            "improvement": self.improvement,
            "wall_seconds": self.wall_seconds,
            "shard_wall_seconds": self.shard_wall_seconds,
            "shard_executor": self.shard_executor,
            "shard_workers": self.shard_workers,
            "inner_executor": self.inner_executor,
            "inner_jobs": self.inner_jobs,
            "resumed_shards": self.resumed_shards,
            "boundary_nets": (
                self.nets.num_boundary if self.nets else 0
            ),
            "internal_nets": (
                self.nets.num_internal if self.nets else 0
            ),
            "seam_windows_applied": (
                self.stitch.seam_pass.windows_applied
                if self.stitch and self.stitch.seam_pass
                else 0
            ),
            "legal": self.stitch.legal if self.stitch else True,
        }


def plan_workers(
    num_shards: int, jobs: int, executor: str
) -> tuple[str, int, str, int]:
    """Split the ``jobs`` budget into shard- and window-level workers.

    Returns ``(shard_kind, shard_workers, inner_kind, inner_jobs)``.
    Workers go process-parallel across shards first (coarse grain,
    best isolation); leftover budget becomes window-parallel threads
    inside each shard worker.  Forcing ``executor='serial'`` keeps
    shard execution sequential and gives the whole budget to each
    shard's window solves instead.
    """
    jobs = max(1, int(jobs))
    if executor not in ("auto", "serial", "thread", "process"):
        raise ValueError(f"unknown shard executor {executor!r}")
    if executor == "serial" or jobs == 1:
        inner = "process" if jobs > 1 else "serial"
        return "serial", 1, inner, jobs
    shard_workers = min(num_shards, jobs)
    inner_jobs = max(1, jobs // shard_workers)
    kind = "process" if executor == "auto" else executor
    # Nested process pools inside pool workers are fragile; leftover
    # budget runs as threads (HiGHS releases the GIL while solving).
    inner_kind = "thread" if inner_jobs > 1 else "serial"
    return kind, shard_workers, inner_kind, inner_jobs


def run_sharded(
    design: Design,
    params: OptParams,
    *,
    shards: int,
    halo_rows: int = 2,
    jobs: int = 1,
    executor: str = "auto",
    presolve: bool = True,
    window_cache: bool = True,
    dirty_tracking: bool = True,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    seam: bool = True,
    verify: bool = True,
    progress=None,
) -> ShardRunResult:
    """Optimize ``design`` in place via region shards + stitching.

    ``shards == 1`` bypasses the shard layer entirely and calls
    :func:`repro.core.vm1opt.vm1_opt` directly — by construction the
    result is byte-identical to an unsharded run (no halo, no seam
    pass), which is the reproducibility anchor the tests pin.

    Args:
        design: legal placed design; optimized in place.
        params: optimizer parameters (shared by shards + seam pass).
        shards: shard count (resolve ``"auto"`` first via
            :func:`repro.shard.partition.resolve_shard_count`).
        halo_rows: frozen ghost rows around each core band.
        jobs: total worker budget (see :func:`plan_workers`).
        executor: shard-level executor kind (``auto``/``serial``/
            ``thread``/``process``).
        presolve / window_cache / dirty_tracking: forwarded to
            every ``vm1_opt`` (and the seam pass — dirty regions are
            seeded from the stitch boundaries).
        checkpoint_dir: when given, shard-granular crash-safe state is
            kept here (see :class:`ShardCheckpointStore`).
        resume: continue from ``checkpoint_dir`` state if compatible.
        seam: run the boundary-window reconciliation pass.
        verify: oracle-verify the stitched placement (raises
            :class:`StitchVerificationError` on any violation).
        progress: optional callable ``(stage, info)`` with stages
            ``shard_plan`` / ``shard`` / ``seam`` / ``stitch``.
    """
    started = time.perf_counter()
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        initial_final = _run_single(
            design, params, jobs, executor,
            presolve=presolve, window_cache=window_cache,
            dirty_tracking=dirty_tracking,
        )
        result = ShardRunResult(
            num_shards=1,
            halo_rows=halo_rows,
            initial_objective=initial_final.initial_objective,
            final_objective=initial_final.final_objective,
            direct=initial_final,
            shard_executor="serial",
            shard_workers=1,
            inner_executor=executor,
            inner_jobs=jobs,
        )
        result.wall_seconds = time.perf_counter() - started
        return result

    # Shipped into every shard worker; the workers' "shard" spans (and
    # their whole vm1_opt subtrees) parent under the span active here
    # (the flow's "opt" stage when called from run_flow).
    trace_ctx = current_context()
    with span("shard_plan", shards=shards, halo_rows=halo_rows):
        plan = plan_shards(design, shards, halo_rows)
        errors = verify_plan(design, plan)
        if errors:
            raise ShardPlanError(
                f"shard plan failed independence proof: {errors}"
            )
        nets = classify_nets(design, plan)
    initial = calculate_objective(design, params)

    chaos = active_chaos()
    store: ShardCheckpointStore | None = None
    resuming = False
    if checkpoint_dir is not None:
        store = ShardCheckpointStore(checkpoint_dir)
        if (
            chaos is not None
            and chaos.check("shard.plan", design.name) is not None
        ):
            # Stale fingerprint: the checkpoint dir was left by some
            # other run.  ``begin(resume=True)`` must refuse it
            # instead of silently mixing two runs' shard state.
            _atomic_write(
                store._plan_path(),
                json.dumps(
                    {
                        "schema": PLAN_SCHEMA,
                        "design": f"{design.name}::stale",
                        "instances": -1,
                        "shards": -1,
                        "halo_rows": -1,
                    },
                    indent=1,
                ),
            )
        resuming = store.begin(
            design, len(plan), halo_rows, resume=resume
        )

    shard_kind, shard_workers, inner_kind, inner_jobs = plan_workers(
        len(plan), jobs, executor
    )
    if progress is not None:
        progress(
            "shard_plan",
            {
                "shards": len(plan),
                "halo_rows": halo_rows,
                "internal_nets": nets.num_internal,
                "boundary_nets": nets.num_boundary,
                "shard_executor": shard_kind,
                "shard_workers": shard_workers,
                "inner_executor": inner_kind,
                "inner_jobs": inner_jobs,
                "resume": resuming,
            },
        )

    outcomes: dict[int, ShardOutcome] = {}
    tasks: list[ShardTask] = []
    for shard in plan.shards:
        if store is not None and resuming:
            done = store.load_done(shard.index)
            if done is not None:
                outcomes[shard.index] = done
                continue
        sub = extract_shard_design(design, shard)
        owned = tuple(
            sorted(
                inst.name
                for inst in design.instances_in(shard.core)
            )
        )
        tasks.append(
            ShardTask(
                task_id=shard.index,
                index=shard.index,
                design_blob=pickle.dumps(
                    sub, protocol=pickle.HIGHEST_PROTOCOL
                ),
                owned=owned,
                params=params,
                inner_executor=inner_kind,
                inner_jobs=inner_jobs,
                presolve=presolve,
                window_cache=window_cache,
                dirty_tracking=dirty_tracking,
                checkpoint_path=(
                    str(store.ckpt_path(shard.index))
                    if store is not None
                    else None
                ),
                resume_doc=(
                    store.load_resume_doc(shard.index)
                    if store is not None and resuming
                    else None
                ),
                trace=trace_ctx,
                chaos=(
                    chaos.plan.to_dict()
                    if chaos is not None
                    else None
                ),
            )
        )

    shard_started = time.perf_counter()
    resumed_shards = len(outcomes) + sum(
        1 for t in tasks if t.resume_doc is not None
    )
    if tasks:
        with make_executor(
            "serial" if shard_workers <= 1 else shard_kind,
            shard_workers,
        ) as shard_executor:
            futures = [
                (task, shard_executor.submit(task)) for task in tasks
            ]
            tracer = (
                active_tracer() if trace_ctx is not None else None
            )
            for task, future in futures:
                outcome = future.result()
                outcomes[task.index] = outcome
                if tracer is not None and outcome.spans:
                    # Submission (= shard) order: deterministic trace
                    # files under any executor.  Done-record outcomes
                    # are NOT re-absorbed on resume — their spans were
                    # already written by the attempt that ran them.
                    tracer.absorb(outcome.spans)
                if store is not None:
                    store.write_done(outcome)
                if progress is not None:
                    progress(
                        "shard",
                        {
                            "index": outcome.index,
                            "cells": len(outcome.placements),
                            "initial_objective":
                                outcome.initial_objective,
                            "final_objective":
                                outcome.final_objective,
                            "iterations": outcome.iterations,
                            "moved_cells": outcome.moved_cells,
                            "wall_seconds": outcome.wall_seconds,
                            "resumed": outcome.resumed,
                        },
                    )
    shard_wall = time.perf_counter() - shard_started

    ordered = [outcomes[s.index] for s in plan.shards]
    merged: dict[str, tuple[int, int, str]] = {}
    for outcome in ordered:
        merged.update(outcome.placements)
    stitch = StitchResult(
        cells_merged=merge_shard_placements(design, merged)
    )
    if seam:
        with span("seam"), make_executor(
            "auto" if jobs > 1 else "serial", jobs
        ) as seam_executor:
            stitch.seam_pass = run_seam_pass(
                design,
                params,
                plan,
                executor=seam_executor,
                presolve=presolve,
                dirty_tracking=dirty_tracking,
            )
        stitch.seam_windows = stitch.seam_pass.windows_built
        if progress is not None:
            progress(
                "seam",
                {
                    "windows": stitch.seam_pass.windows_built,
                    "applied": stitch.seam_pass.windows_applied,
                    "moved_cells": stitch.seam_pass.moved_cells,
                    "windows_skipped_clean": (
                        stitch.seam_pass.windows_skipped_clean
                    ),
                },
            )
    if verify:
        with span("stitch_verify"):
            stitch.verify_errors = verify_stitched(design)

    final = calculate_objective(design, params)
    result = ShardRunResult(
        num_shards=len(plan),
        halo_rows=halo_rows,
        initial_objective=initial,
        final_objective=final,
        plan=plan,
        nets=nets,
        outcomes=ordered,
        stitch=stitch,
        shard_wall_seconds=shard_wall,
        shard_executor=shard_kind if tasks else "serial",
        shard_workers=shard_workers,
        inner_executor=inner_kind,
        inner_jobs=inner_jobs,
        resumed_shards=resumed_shards,
    )
    result.wall_seconds = time.perf_counter() - started
    if progress is not None:
        progress("stitch", result.summary())
    if verify and not stitch.legal:
        raise StitchVerificationError(
            f"stitched placement failed verification: "
            f"{stitch.verify_errors[:5]}"
        )
    return result


def _run_single(
    design: Design,
    params: OptParams,
    jobs: int,
    executor: str,
    *,
    presolve: bool,
    window_cache: bool,
    dirty_tracking: bool = True,
) -> VM1OptResult:
    """The shards == 1 fast path: plain (byte-identical) vm1_opt."""
    with make_executor(executor, jobs) as ex:
        return vm1_opt(
            design,
            params,
            executor=ex,
            presolve=presolve,
            window_cache=window_cache,
            dirty_tracking=dirty_tracking,
        )
