"""Full-chip scale-out: region sharding, halo stitching, big designs.

The shard layer lifts :mod:`repro.runtime`'s window-level parallelism
one level up: the die is tiled into row-band shards with frozen halo
context (:mod:`repro.shard.partition`), each shard runs its own
``vm1_opt`` through the existing executors with shard-granular
crash-safe checkpoints (:mod:`repro.shard.runner`), and the results
are merged, seam-reconciled, and oracle-verified
(:mod:`repro.shard.stitch`).  :mod:`repro.shard.synth` generates the
deterministic 10k–100k-cell Rent-connectivity designs the scale
benchmarks run on.
"""

from repro.shard.partition import (
    AUTO_CELLS_PER_SHARD,
    NetClassification,
    RegionShard,
    ShardPlan,
    classify_nets,
    extract_shard_design,
    max_shards_for,
    plan_shards,
    resolve_shard_count,
    verify_plan,
)
from repro.shard.runner import (
    ShardCheckpointStore,
    ShardOutcome,
    ShardPlanError,
    ShardRunResult,
    ShardTask,
    StitchVerificationError,
    plan_workers,
    run_sharded,
)
from repro.shard.stitch import (
    StitchResult,
    merge_shard_placements,
    run_seam_pass,
    seam_window_filter,
    verify_stitched,
)
from repro.shard.synth import (
    RENT_EXPONENT,
    generate_scaled_design,
    scale_profile,
)

__all__ = [
    "AUTO_CELLS_PER_SHARD",
    "NetClassification",
    "RegionShard",
    "ShardPlan",
    "classify_nets",
    "extract_shard_design",
    "max_shards_for",
    "plan_shards",
    "resolve_shard_count",
    "verify_plan",
    "ShardCheckpointStore",
    "ShardOutcome",
    "ShardPlanError",
    "ShardRunResult",
    "ShardTask",
    "StitchVerificationError",
    "plan_workers",
    "run_sharded",
    "StitchResult",
    "merge_shard_placements",
    "run_seam_pass",
    "seam_window_filter",
    "verify_stitched",
    "RENT_EXPONENT",
    "generate_scaled_design",
    "scale_profile",
]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.shard")
