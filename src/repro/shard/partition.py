"""Region partitioning for full-chip scale-out (the shard layer).

The die is tiled into horizontal **row-band shards**: each shard owns a
contiguous band of placement rows (its *core*) plus a configurable
*halo* of neighbor rows whose cells participate in the shard's window
models as frozen ghost context.  Cong et al.'s locality results
(*Locality and Utilization in Placement Suboptimality*) motivate the
construction: detailed-placement quality is dominated by each cell's
immediate neighborhood, so freezing everything more than a few rows
away changes the reachable optima only marginally while making the
shards independently solvable.

Independence is *structural*, proved the same way
:func:`repro.core.window.independent_families` proves window
independence — by disjointness of the mutable regions:

* shard cores tile the die rows exactly (pairwise-disjoint y
  projections, complete cover), so the movable cell sets are pairwise
  disjoint;
* every shard's halo context is captured from the **pre-run snapshot**
  and frozen (``fixed=True`` ghosts), so no shard ever observes
  another shard's in-flight moves;
* movable cells cannot leave their core band — the extracted
  sub-design's die *is* the core band, and every window solve keeps
  cells inside the die.

Together these give order-independence: running the shards serially,
threaded, or process-parallel produces the identical merged placement.
:func:`verify_plan` checks the invariants explicitly and returns a
list of violations (empty = proven independent), mirroring the
``check_legal`` error-list idiom.

Row-parity invariant: shard core boundaries are snapped to **even**
global row indices so that a row's parity relative to the sub-die
origin equals its global parity — N/FS orientation alternation (and
therefore every orientation-legality rule the window MILP encodes) is
preserved verbatim in the extract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Rect
from repro.netlist.design import Design

#: ``auto`` shard sizing: aim for roughly this many cells per shard.
AUTO_CELLS_PER_SHARD = 5_000

#: Minimum core rows per shard (2 keeps the parity snap meaningful).
MIN_CORE_ROWS = 4


@dataclass(frozen=True)
class RegionShard:
    """One row-band shard: core rows plus frozen halo context.

    Attributes:
        index: shard number, bottom band first.
        row_lo/row_hi: global row indices of the core band
            (half-open, ``row_lo`` inclusive).
        core: core region in DBU (full die width).
        halo: core expanded by the halo rows, clipped to the die.
    """

    index: int
    row_lo: int
    row_hi: int
    core: Rect
    halo: Rect

    @property
    def num_core_rows(self) -> int:
        return self.row_hi - self.row_lo


@dataclass(frozen=True)
class ShardPlan:
    """A complete partition of the die into row-band shards."""

    shards: tuple[RegionShard, ...]
    halo_rows: int

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def seam_ys(self) -> tuple[int, ...]:
        """Absolute y of every internal shard boundary (DBU)."""
        return tuple(s.core.ylo for s in self.shards[1:])


@dataclass
class NetClassification:
    """Internal/boundary split of the design's nets under a plan.

    A net is *internal* to shard ``k`` when every terminal (instance
    pin or IO pad) lies inside shard ``k``'s core region; any net
    whose terminals span two or more cores (or touch a pad outside
    every core) is a *boundary* net — its HPWL couples shards and is
    only approximately optimized until the seam pass.
    """

    internal: dict[int, int] = field(default_factory=dict)
    boundary_nets: set[str] = field(default_factory=set)
    trivial: int = 0

    @property
    def num_internal(self) -> int:
        return sum(self.internal.values())

    @property
    def num_boundary(self) -> int:
        return len(self.boundary_nets)


def max_shards_for(design: Design, halo_rows: int) -> int:
    """Largest shard count the die's row budget supports."""
    min_rows = max(MIN_CORE_ROWS, 2 * max(0, halo_rows))
    return max(1, design.num_rows // min_rows)


def resolve_shard_count(
    design: Design, shards: int | str, jobs: int, halo_rows: int
) -> int:
    """Resolve a ``--shards`` value (int or ``"auto"``) to a count.

    ``auto`` targets :data:`AUTO_CELLS_PER_SHARD` cells per shard but
    never exceeds ``jobs`` (a lone worker gains nothing from the halo
    approximation) nor the die's row budget.  Explicit counts are
    clamped to the row budget only.
    """
    cap = max_shards_for(design, halo_rows)
    if isinstance(shards, str):
        if shards != "auto":
            raise ValueError(
                f"shards must be a positive int or 'auto', got {shards!r}"
            )
        by_size = max(1, len(design.instances) // AUTO_CELLS_PER_SHARD)
        return max(1, min(by_size, max(1, jobs), cap))
    count = int(shards)
    if count < 1:
        raise ValueError(f"shards must be >= 1, got {count}")
    return min(count, cap)


def plan_shards(
    design: Design, num_shards: int, halo_rows: int
) -> ShardPlan:
    """Tile the die into ``num_shards`` row bands with ``halo_rows``.

    Band boundaries are even-row-snapped (parity invariant) and the
    band heights are balanced to within one snap quantum.  Raises
    ``ValueError`` when the die cannot host the requested count.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if halo_rows < 0:
        raise ValueError(f"halo_rows must be >= 0, got {halo_rows}")
    rows = design.num_rows
    if num_shards > max_shards_for(design, halo_rows):
        raise ValueError(
            f"die has {rows} rows; cannot host {num_shards} shards "
            f"with halo_rows={halo_rows} "
            f"(max {max_shards_for(design, halo_rows)})"
        )
    die = design.die
    rh = design.tech.row_height
    # Even-snapped band boundaries: b_0 = 0 < b_1 < ... < b_N = rows.
    bounds = [0]
    for k in range(1, num_shards):
        b = round(k * rows / num_shards / 2) * 2
        b = max(b, bounds[-1] + 2)
        bounds.append(b)
    bounds.append(rows)
    shards = []
    for index in range(num_shards):
        row_lo, row_hi = bounds[index], bounds[index + 1]
        core = Rect(
            die.xlo, die.ylo + row_lo * rh, die.xhi, die.ylo + row_hi * rh
        )
        halo = Rect(
            die.xlo,
            max(die.ylo, core.ylo - halo_rows * rh),
            die.xhi,
            min(die.yhi, core.yhi + halo_rows * rh),
        )
        shards.append(
            RegionShard(
                index=index,
                row_lo=row_lo,
                row_hi=row_hi,
                core=core,
                halo=halo,
            )
        )
    return ShardPlan(shards=tuple(shards), halo_rows=halo_rows)


def shard_of_instance(plan: ShardPlan, design: Design, name: str) -> int:
    """Core shard index owning instance ``name``."""
    row = design.row_of(design.instances[name])
    for shard in plan.shards:
        if shard.row_lo <= row < shard.row_hi:
            return shard.index
    raise ValueError(f"instance {name} (row {row}) outside every core")


def classify_nets(design: Design, plan: ShardPlan) -> NetClassification:
    """Split nets into shard-internal and boundary (see class docs)."""
    result = NetClassification(
        internal={s.index: 0 for s in plan.shards}
    )
    bounds = [s.core.ylo for s in plan.shards] + [
        plan.shards[-1].core.yhi
    ]

    def owner_of_y(y: int) -> int:
        for index in range(len(plan.shards)):
            if bounds[index] <= y < bounds[index + 1]:
                return index
        return -1  # pad on/outside the top die edge

    for net in design.nets.values():
        if net.is_trivial():
            result.trivial += 1
            continue
        owners = {
            owner_of_y(design.instances[ref.instance].y)
            for ref in net.pins
        }
        owners.update(owner_of_y(pad.y) for pad in net.pads)
        if len(owners) == 1 and -1 not in owners:
            result.internal[next(iter(owners))] += 1
        else:
            result.boundary_nets.add(net.name)
    return result


def extract_shard_design(
    design: Design, shard: RegionShard
) -> Design:
    """Build the independent sub-design for one shard.

    The sub-design's die is the shard's **core** band (movable cells
    cannot leave it); instances inside the halo-but-not-core band ride
    along as ``fixed=True`` ghosts — they sit outside the sub-die, which
    is fine because only window *probes* and net geometry read them.
    Every net touching an included instance is replicated with its
    included pins; terminals on excluded instances are represented as
    fixed pads at their current absolute position, so boundary-net HPWL
    pressure survives the cut.  Instance/net names are preserved, which
    is what makes the stitch a plain placement copy-back.
    """
    sub = Design(
        f"{design.name}.shard{shard.index}", design.tech, shard.core
    )
    included: set[str] = set()
    for name, inst in design.instances.items():
        bbox = inst.bbox
        if not bbox.overlaps_open(shard.halo):
            continue
        in_core = shard.core.contains_rect(bbox)
        copy = sub.add_instance(name, inst.macro)
        copy.x, copy.y = inst.x, inst.y
        copy.orientation = inst.orientation
        copy.fixed = inst.fixed or not in_core
        included.add(name)
    for net_name, net in design.nets.items():
        kept = [ref for ref in net.pins if ref.instance in included]
        if not kept:
            continue
        sub_net = sub.add_net(net_name)
        for ref in kept:
            sub.connect(net_name, ref.instance, ref.pin)
        sub_net.pads.extend(net.pads)
        for ref in net.pins:
            if ref.instance in included:
                continue
            inst = design.instances[ref.instance]
            sub_net.pads.append(inst.pin_position(ref.pin))
    return sub


def verify_plan(design: Design, plan: ShardPlan) -> list[str]:
    """Prove the plan's independence invariants; return violations.

    Mirrors the disjoint-projection argument of
    :func:`repro.core.window.independent_families`: (1) cores are
    pairwise disjoint in y and tile the die rows completely, (2) core
    boundaries sit on even global rows (parity invariant), (3) every
    instance is owned by exactly one core, and (4) each shard's halo
    covers the full probe margin around its core.
    """
    errors: list[str] = []
    shards = plan.shards
    if not shards:
        return ["plan has no shards"]
    if shards[0].row_lo != 0:
        errors.append("first core does not start at row 0")
    if shards[-1].row_hi != design.num_rows:
        errors.append(
            f"last core ends at row {shards[-1].row_hi}, "
            f"die has {design.num_rows} rows"
        )
    for a, b in zip(shards, shards[1:]):
        if a.row_hi != b.row_lo:
            errors.append(
                f"cores {a.index}/{b.index} do not tile: "
                f"{a.row_hi} != {b.row_lo}"
            )
    for shard in shards:
        if shard.row_lo % 2:
            errors.append(
                f"shard {shard.index} core starts at odd row "
                f"{shard.row_lo} (parity invariant)"
            )
        if shard.num_core_rows < 1:
            errors.append(f"shard {shard.index} has an empty core")
        rh = design.tech.row_height
        want_lo = max(
            design.die.ylo, shard.core.ylo - plan.halo_rows * rh
        )
        want_hi = min(
            design.die.yhi, shard.core.yhi + plan.halo_rows * rh
        )
        if shard.halo.ylo != want_lo or shard.halo.yhi != want_hi:
            errors.append(
                f"shard {shard.index} halo does not cover "
                f"{plan.halo_rows} rows around its core"
            )
    owners: dict[str, int] = {}
    for shard in shards:
        for inst in design.instances_in(shard.core):
            if inst.name in owners:
                errors.append(
                    f"{inst.name} owned by shards "
                    f"{owners[inst.name]} and {shard.index}"
                )
            owners[inst.name] = shard.index
    missing = set(design.instances) - set(owners)
    if missing:
        errors.append(
            f"{len(missing)} instance(s) outside every core, e.g. "
            f"{sorted(missing)[:3]}"
        )
    return errors
