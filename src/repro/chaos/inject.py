"""Runtime half of the chaos harness: controller + hook helpers.

A :class:`ChaosController` wraps a :class:`~repro.chaos.plan.FaultPlan`
and answers one question at each *hook point*: "does a fault fire
here, now?".  Hook points are explicit calls threaded through the
production code (``barrier(...)``, ``chaos.check(...)``,
``chaos.arm_task(...)``) — never monkeypatching — and every one of
them starts with a ``None``/not-installed test so the disabled hot
path costs a single attribute load, mirroring the ``NULL_SPAN``
pattern in :mod:`repro.obs.trace`.

Determinism contract:

* trigger state (per-rule call counters, per-rule seeded RNGs) lives
  in the controller, which is consulted only from the single-threaded
  scheduler loop / flow thread — never concurrently from workers;
* worker-side faults are *armed* in the parent: the scheduler asks
  ``arm_task(task, attempt=n)`` and ships the armed directive to the
  worker as a plain picklable tuple on the task, so the same plan
  and seed fault the same windows under any executor.
"""

from __future__ import annotations

import contextlib
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.chaos.plan import FaultPlan, FaultRule
from repro.obs.trace import current_span_names


class ChaosFault(RuntimeError):
    """An injected fault.  Deliberate; carries its site in the message."""


@dataclass
class _RuleState:
    rule: FaultRule
    rng: random.Random
    calls: int = 0
    fires: int = 0


@dataclass
class ChaosController:
    """Evaluates a fault plan's triggers at each hook point.

    Not thread-safe by design: consult it only from the coordinating
    thread (scheduler submit loop, flow thread).  Worker processes
    never see the controller — only armed directives.
    """

    plan: FaultPlan
    _states: list[_RuleState] = field(default_factory=list)
    #: every (site, name) consulted — lets tests and the fuzzer
    #: discover which barrier names a flow actually passes.
    observed: list[tuple[str, str]] = field(default_factory=list)
    _drained: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.plan.validate()
        for index, rule in enumerate(self.plan.faults):
            self._states.append(
                _RuleState(
                    rule=rule,
                    rng=random.Random(self.plan.seed * 100_003 + index),
                )
            )

    # -- trigger evaluation -------------------------------------------

    def check(
        self, site: str, name: str = "", *, attempt: int = 1
    ) -> FaultRule | None:
        """First rule that fires for this call, or None.

        ``name`` is the hook's qualifier (barrier name, task id);
        ``attempt`` is 1-based — rules skip retries unless they opt in
        with ``on_retry`` so injected per-window faults stay transient.
        """
        self.observed.append((site, name))
        fired: FaultRule | None = None
        for state in self._states:
            rule = state.rule
            if rule.site != site:
                continue
            if rule.match and rule.match not in name:
                continue
            if rule.span and not any(
                rule.span in open_name
                for open_name in current_span_names()
            ):
                continue
            if attempt > 1 and not rule.on_retry:
                continue
            state.calls += 1
            if rule.max_fires and state.fires >= rule.max_fires:
                continue
            fires = (
                (rule.nth and state.calls == rule.nth)
                or (rule.every and state.calls % rule.every == 0)
                or (
                    rule.probability
                    and state.rng.random() < rule.probability
                )
            )
            if fires and fired is None:
                state.fires += 1
                fired = rule
        return fired

    def arm_task(self, task, *, attempt: int = 1):
        """Arm worker/solver faults for one window task.

        Returns the task unchanged, or a copy whose ``chaos`` field
        carries a picklable ``(site, action, seconds)`` directive the
        worker applies inside ``WindowTask.run``.
        """
        import dataclasses

        name = task.task_id
        for site in ("runtime.worker", "milp.solve", "runtime.result"):
            rule = self.check(site, name, attempt=attempt)
            if rule is not None:
                return dataclasses.replace(
                    task,
                    chaos=(rule.site, rule.action, rule.seconds),
                )
        return task

    # -- accounting ---------------------------------------------------

    def fires_by_site(self) -> dict[str, int]:
        """Cumulative fires per site over the controller's lifetime."""
        counts: dict[str, int] = {}
        for state in self._states:
            if state.fires:
                site = state.rule.site
                counts[site] = counts.get(site, 0) + state.fires
        return counts

    def total_fires(self) -> int:
        return sum(state.fires for state in self._states)

    def drain_counts(self) -> dict[str, int]:
        """Fires per site since the last drain (for telemetry)."""
        current = self.fires_by_site()
        delta = {
            site: count - self._drained.get(site, 0)
            for site, count in current.items()
            if count - self._drained.get(site, 0) > 0
        }
        self._drained = current
        return delta


# -- installation: thread-local with global fallback ------------------
# Same shape as repro.obs.trace's tracer installation so the two
# subsystems compose (and so `chaos=None` paths cost one attribute
# load plus an `is None` test).

_TLS = threading.local()
_GLOBAL: ChaosController | None = None
_UNSET = object()


def install(controller: ChaosController | None) -> None:
    """Install a controller globally (all threads without an override)."""
    global _GLOBAL
    _GLOBAL = controller


def uninstall() -> None:
    install(None)


def active_chaos() -> ChaosController | None:
    local = getattr(_TLS, "controller", _UNSET)
    if local is not _UNSET:
        return local
    return _GLOBAL


@contextlib.contextmanager
def chaos_scope(controller: ChaosController | None):
    """Thread-local override, restored on exit (exception-safe)."""
    previous = getattr(_TLS, "controller", _UNSET)
    _TLS.controller = controller
    try:
        yield controller
    finally:
        if previous is _UNSET:
            del _TLS.controller
        else:
            _TLS.controller = previous


# -- hook helpers -----------------------------------------------------


def barrier(name: str) -> None:
    """Named barrier: a crash point the plan can target by name.

    Production call sites sprinkle ``barrier("checkpoint:move[...]")``
    etc. after durability boundaries; with no controller installed
    this is one function call + one ``is None`` test.
    """
    chaos = active_chaos()
    if chaos is None:
        return
    rule = chaos.check("barrier", name)
    if rule is None:
        return
    if rule.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    raise ChaosFault(f"barrier[{name}]")


def maybe_crash_worker(directive: tuple | None) -> None:
    """Apply ``crash``/``hang`` before the worker's own error handling.

    A ``crash`` escapes :meth:`WindowTask.run` entirely — the
    scheduler sees an executor failure, like a worker that died; a
    ``hang`` sleeps past the per-task timeout so the deadline path
    fires.
    """
    if directive is None:
        return
    site, action, seconds = directive
    if site != "runtime.worker":
        return
    if action == "crash":
        raise ChaosFault("runtime.worker[crash]")
    if action == "hang":
        time.sleep(seconds)


def maybe_raise_worker(directive: tuple | None) -> None:
    """Apply ``raise`` inside the worker's try block: the exception is
    folded into ``WindowTaskResult.error`` like any solver crash."""
    if directive is None:
        return
    site, action, _seconds = directive
    if site == "runtime.worker" and action == "raise":
        raise ChaosFault("runtime.worker[raise]")


def fault_solution(directive: tuple | None, solution):
    """Swap a solver return for a faulted one per an armed directive."""
    if directive is None:
        return solution
    site, action, _seconds = directive
    if site != "milp.solve":
        return solution
    from repro.milp.solution import Solution, SolveStatus

    if action == "error":
        return Solution(
            status=SolveStatus.ERROR,
            objective=0.0,
            values={},
            message="chaos: injected solver error",
        )
    if action == "infeasible":
        return Solution(
            status=SolveStatus.INFEASIBLE,
            objective=0.0,
            values={},
            message="chaos: injected infeasible",
        )
    if action == "timeout":
        return Solution(
            status=SolveStatus.ERROR,
            objective=0.0,
            values={},
            message="chaos: injected time limit reached",
        )
    return solution


class PoisonPill:
    """Unpicklable stand-in for a result crossing a process boundary.

    ``__reduce__`` raises, so a process-pool worker dies trying to
    ship the result back; serial/thread executors have no pickle
    boundary, so plans using ``runtime.result: poison`` pin
    ``run: {"executor": "process"}``.
    """

    def __reduce__(self):
        raise ChaosFault("runtime.result[poison]")
