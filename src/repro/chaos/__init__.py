"""repro.chaos — deterministic, seed-driven fault injection.

Two halves:

* :mod:`repro.chaos.plan` — ``FaultPlan``/``FaultRule``: JSON fault
  plans (schema ``repro.chaos.plan/v1``) mapping injection sites to
  trigger predicates.
* :mod:`repro.chaos.inject` — ``ChaosController`` + the hook helpers
  the production code calls (``barrier``, ``active_chaos``, …).

The differential chaos runner and fuzzing live in
:mod:`repro.chaos.runner`, which pulls in netlist/core/check and is
imported lazily by its callers (CLI, ``repro.check``) — importing
``repro.chaos`` itself stays light so hook sites can afford it.
"""

from repro.chaos.inject import (
    ChaosController,
    ChaosFault,
    PoisonPill,
    active_chaos,
    barrier,
    chaos_scope,
    install,
    uninstall,
)
from repro.chaos.plan import (
    PLAN_SCHEMA,
    SITES,
    ChaosPlanError,
    FaultPlan,
    FaultRule,
)

__all__ = [
    "PLAN_SCHEMA",
    "SITES",
    "ChaosController",
    "ChaosFault",
    "ChaosPlanError",
    "FaultPlan",
    "FaultRule",
    "PoisonPill",
    "active_chaos",
    "barrier",
    "chaos_scope",
    "install",
    "uninstall",
]

from repro.log import subsystem_logger

logger = subsystem_logger("repro.chaos")
