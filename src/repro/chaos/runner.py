"""Chaos differential runner: faulted vs clean, plus fuzz + shrink.

The heart of the chaos tier: :func:`run_chaos_case` executes one
:class:`~repro.chaos.plan.FaultPlan` against a real VM1Opt workload
twice — once clean, once with the controller installed — and checks
the **invariant ladder** the previous PRs promised in prose:

1. *Something fired.*  A plan whose triggers never fire proves
   nothing; the case fails loudly instead of vacuously passing.
2. *Byte-identical convergence.*  Every fault in the corpus is
   recoverable (retry, serial fallback, or checkpoint resume), so the
   faulted run's final placement must equal the clean run's exactly,
   and must be legal by the independent oracle.
3. *Faults are visible.*  Injected fault counts surface in the
   telemetry v4 ``repro_run_faults_injected_total`` counter; retried
   window faults bump ``repro_run_retries_total``; fault actions that
   produce a failed solve attempt leave ``error:``-status spans in
   the trace.

:func:`run_fuzz` generates seeded random plans from the recoverable
templates, runs each case, and delta-debug-shrinks any failing plan
to a minimal reproducer (saved as JSON for CI artifact upload).

Heavy imports (netlist, core, runtime) are local to this module;
callers import it lazily so ``repro.chaos`` itself stays light.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.chaos.inject import ChaosController, ChaosFault, chaos_scope
from repro.chaos.plan import FaultPlan, FaultRule

#: (site, action) pairs whose recovery path is a same-run retry of the
#: faulted window; these must bump ``repro_run_retries_total``.
RETRIED_ACTIONS = frozenset(
    (
        ("runtime.worker", "raise"),
        ("runtime.worker", "crash"),
        ("runtime.result", "lost"),
        ("runtime.result", "poison"),
        ("milp.solve", "error"),
        ("milp.solve", "infeasible"),
    )
)

#: (site, action) pairs whose failed attempt produces a synthesized
#: worker span with ``error:`` status (crash/poison abort before span
#: synthesis or lose the spans in transit, so they are excluded).
ERROR_SPAN_ACTIONS = frozenset(
    (
        ("runtime.worker", "raise"),
        ("runtime.result", "lost"),
        ("milp.solve", "error"),
        ("milp.solve", "infeasible"),
    )
)

#: In-process resume attempts allowed per case before declaring the
#: plan unrecoverable (a barrier rule without ``max_fires`` could
#: otherwise re-kill every resume forever).
MAX_RESUME_ATTEMPTS = 3


@dataclass
class ChaosCaseResult:
    """Outcome of one plan through the differential runner."""

    plan: FaultPlan
    converged: bool
    errors: list[str] = field(default_factory=list)
    #: cumulative fires per site over the whole faulted run.
    fires: dict[str, int] = field(default_factory=dict)
    #: telemetry v4 counters section of the faulted run.
    counters: dict = field(default_factory=dict)
    resume_attempts: int = 0
    error_spans: int = 0

    def summary(self) -> dict:
        return {
            "converged": self.converged,
            "errors": list(self.errors),
            "fires": dict(self.fires),
            "resume_attempts": self.resume_attempts,
            "error_spans": self.error_spans,
        }


def _case_design(profile: str, scale: float, seed: int):
    from repro.library import build_library
    from repro.netlist import generate_design
    from repro.placement import place_design
    from repro.tech import CellArchitecture, make_tech

    tech = make_tech(CellArchitecture.CLOSED_M1)
    library = build_library(tech)
    design = generate_design(
        profile, tech, library, scale=scale, seed=seed
    )
    place_design(design, seed=seed + 1)
    return design


def run_chaos_case(
    plan: FaultPlan,
    *,
    profile: str = "m0",
    scale: float = 0.01,
    seed: int = 2,
    time_limit: float = 1.0,
) -> ChaosCaseResult:
    """Run one fault plan faulted-vs-clean; assert the invariant
    ladder.  ``plan.run`` hints override the workload knobs."""
    from repro.core import OptParams
    from repro.core.vm1opt import vm1_opt
    from repro.obs.trace import Tracer, tracer_scope
    from repro.runtime import RunTelemetry, make_executor

    hints = plan.run
    profile = str(hints.get("profile", profile))
    scale = float(hints.get("scale", scale))
    time_limit = float(hints.get("time_limit", time_limit))
    executor_kind = str(hints.get("executor", "serial"))
    jobs = int(hints.get("jobs", 1))

    clean_design = _case_design(profile, scale, seed)
    params = OptParams.for_arch(
        clean_design.tech.arch, time_limit=time_limit
    )
    clean = vm1_opt(clean_design, params)
    clean_snapshot = clean_design.placement_snapshot()

    controller = ChaosController(plan=plan)
    telemetry = RunTelemetry(executor=executor_kind, jobs=jobs)
    tracer = Tracer()
    result = ChaosCaseResult(plan=plan, converged=False)
    faulted_design = _case_design(profile, scale, seed)
    checkpoints: list = []
    faulted = None
    with make_executor(executor_kind, jobs) as executor:
        with tracer_scope(tracer), chaos_scope(controller):
            resume = None
            for _attempt in range(MAX_RESUME_ATTEMPTS + 1):
                try:
                    faulted = vm1_opt(
                        faulted_design,
                        params,
                        executor=executor,
                        telemetry=telemetry,
                        checkpoint_sink=checkpoints.append,
                        resume=resume,
                    )
                    break
                except ChaosFault as fault:
                    # A barrier (or shard) fault escaped the run —
                    # the crash-resume rung.  Resume exactly as the
                    # service would: fresh design, last checkpoint.
                    result.resume_attempts += 1
                    if result.resume_attempts > MAX_RESUME_ATTEMPTS:
                        result.errors.append(
                            f"still faulting after "
                            f"{MAX_RESUME_ATTEMPTS} resumes: {fault}"
                        )
                        break
                    faulted_design = _case_design(
                        profile, scale, seed
                    )
                    resume = checkpoints[-1] if checkpoints else None
    # Drain fires the per-pass drains never saw (barrier faults fire
    # between passes; the last pass's drain precedes them).
    telemetry.record_faults(controller.drain_counts())

    result.fires = controller.fires_by_site()
    result.counters = telemetry.registry.to_dict()
    result.error_spans = sum(
        1
        for span in tracer.spans
        if str(span.status).startswith("error:")
    )
    _check_ladder(
        result,
        controller=controller,
        faulted=faulted,
        faulted_design=faulted_design,
        clean=clean,
        clean_snapshot=clean_snapshot,
    )
    result.converged = not result.errors
    return result


def _check_ladder(
    result: ChaosCaseResult,
    *,
    controller: ChaosController,
    faulted,
    faulted_design,
    clean,
    clean_snapshot,
) -> None:
    plan = result.plan
    # Rung 1: the plan actually did something.
    if controller.total_fires() == 0:
        result.errors.append(
            "no fault fired — the plan is vacuous for this workload"
        )
        return
    if faulted is None:
        # errors already recorded by the resume loop
        return
    # Rung 2: byte-identical convergence + independent legality.
    faulted_snapshot = faulted_design.placement_snapshot()
    if faulted_snapshot != clean_snapshot:
        diff = [
            name
            for name in clean_snapshot
            if faulted_snapshot.get(name) != clean_snapshot[name]
        ]
        result.errors.append(
            f"faulted placement differs from clean on "
            f"{len(diff)} cells: {diff[:5]}"
        )
    if faulted.final_objective != clean.final_objective:
        result.errors.append(
            f"faulted objective {faulted.final_objective!r} != "
            f"clean {clean.final_objective!r}"
        )
    legality = faulted_design.check_legal()
    if legality:
        result.errors.append(
            f"faulted placement is illegal: {legality[:3]}"
        )
    # Rung 3: the faults are visible in telemetry and traces.
    # ``repro_run_faults_injected_total`` has one label (site), so
    # ``to_dict`` renders it as ``{site: count}``; the retries counter
    # is unlabeled and renders as a scalar.
    injected = result.counters.get(
        "repro_run_faults_injected_total", {}
    )
    counted = sum(injected.values()) if injected else 0
    if counted != controller.total_fires():
        result.errors.append(
            f"telemetry counted {counted} injected faults, "
            f"controller fired {controller.total_fires()}"
        )
    actions = {(rule.site, rule.action) for rule in plan.faults}
    if actions & RETRIED_ACTIONS:
        retries = result.counters.get("repro_run_retries_total", 0)
        if not retries:
            result.errors.append(
                "retryable fault fired but telemetry records no "
                "retries"
            )
    if actions & ERROR_SPAN_ACTIONS and result.error_spans == 0:
        result.errors.append(
            "fault fired but no error:-status span reached the trace"
        )


# -- fuzzing ----------------------------------------------------------

#: Recoverable fault templates the fuzzer draws from.  Every entry
#: must converge byte-identically through retry or resume; hang /
#: timeout / kill actions are excluded (hangs and solver timeouts
#: degrade to dropped windows — correct but not byte-identical —
#: and kills need a subprocess harness; all covered by dedicated
#: tests, not the convergence fuzz).
FUZZ_TEMPLATES: tuple[dict, ...] = (
    {"site": "runtime.worker", "action": "raise"},
    {"site": "runtime.worker", "action": "crash"},
    {"site": "runtime.result", "action": "lost"},
    {"site": "milp.solve", "action": "error"},
    {"site": "milp.solve", "action": "infeasible"},
    {"site": "barrier", "action": "raise", "match": "checkpoint:"},
)


def generate_plan(seed: int) -> FaultPlan:
    """One seeded random plan from the recoverable templates."""
    rng = random.Random(seed)
    rules = []
    for template in rng.sample(
        FUZZ_TEMPLATES, k=rng.choice((1, 1, 2))
    ):
        rule = dict(template)
        if rng.random() < 0.7:
            rule["nth"] = rng.randint(1, 4)
        else:
            rule["probability"] = round(rng.uniform(0.2, 0.5), 3)
            rule["max_fires"] = rng.randint(1, 2)
        rules.append(FaultRule.from_dict(rule))
    return FaultPlan(seed=seed, faults=tuple(rules))


def shrink_plan(plan: FaultPlan, still_fails) -> FaultPlan:
    """Delta-debug a failing plan down to a minimal reproducer.

    ``still_fails(candidate)`` re-runs the case; a candidate that
    still fails replaces the current plan.  One-rule-at-a-time
    removal is enough at corpus scale (plans have <= 3 rules).
    """
    current = plan
    progress = True
    while progress and len(current.faults) > 1:
        progress = False
        for index in range(len(current.faults)):
            candidate = FaultPlan(
                seed=current.seed,
                faults=tuple(
                    rule
                    for j, rule in enumerate(current.faults)
                    if j != index
                ),
                run=dict(current.run),
            )
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current


def run_fuzz(
    count: int,
    *,
    seed: int = 0,
    out_dir: str | Path | None = None,
    profile: str = "m0",
    scale: float = 0.01,
    case_seed: int = 2,
    time_limit: float = 1.0,
) -> dict:
    """Run ``count`` seeded random plans; shrink and save failures.

    Returns a summary dict (``ran`` / ``failed`` / ``artifacts``).
    Vacuous plans (no trigger fired for this workload) count as ran
    but are not failures — the fuzzer explores trigger space, and an
    nth beyond the call census is a miss, not a bug.
    """

    def case(plan: FaultPlan) -> ChaosCaseResult:
        return run_chaos_case(
            plan,
            profile=profile,
            scale=scale,
            seed=case_seed,
            time_limit=time_limit,
        )

    ran = 0
    failures: list[tuple[FaultPlan, ChaosCaseResult]] = []
    for index in range(count):
        plan = generate_plan(seed * 100_003 + index)
        outcome = case(plan)
        ran += 1
        vacuous = (
            not outcome.converged
            and len(outcome.errors) == 1
            and "vacuous" in outcome.errors[0]
        )
        if not outcome.converged and not vacuous:
            failures.append((plan, outcome))
    artifacts: list[str] = []
    for plan, outcome in failures:
        shrunk = shrink_plan(
            plan, lambda candidate: not case(candidate).converged
        )
        if out_dir is not None:
            out = Path(out_dir)
            out.mkdir(parents=True, exist_ok=True)
            path = out / f"failing_plan_seed{plan.seed}.json"
            path.write_text(shrunk.dumps())
            artifacts.append(str(path))
    return {
        "ran": ran,
        "failed": len(failures),
        "errors": [
            outcome.errors for _plan, outcome in failures
        ],
        "artifacts": artifacts,
    }
