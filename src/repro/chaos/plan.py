"""Fault plans: the declarative half of the chaos harness.

A :class:`FaultPlan` is a small JSON document (schema
``repro.chaos.plan/v1``) mapping *injection sites* — named hook
points threaded through the runtime/milp/service/shard layers — to
*trigger predicates*: fire on the nth matching call, on a seeded
per-call probability, periodically, or only while a named span is
open.  Plans are data, never code: the same plan file drives a unit
test, the ``repro chaos`` CLI, and the CI corpus, and two runs of the
same plan against the same seed inject byte-identical fault
sequences.

Site inventory (see DESIGN.md §13 for where each hook lives):

========================  ==============================  ===========
site                      actions                         layer
========================  ==============================  ===========
``runtime.worker``        raise / crash / hang            scheduler →
                                                          worker
``runtime.result``        poison / lost                   worker →
                                                          scheduler
``milp.solve``            error / infeasible / timeout    solver
                                                          return
``jobstore.event``        torn                            events
                                                          journal
``jobstore.checkpoint``   torn                            checkpoint
                                                          writes
``fs.fsync``              fail                            atomic
                                                          write path
``shard.plan``            stale                           shard
                                                          fingerprint
``barrier``               raise / kill                    named
                                                          barriers
========================  ==============================  ===========
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path

#: JSON schema identifier of a fault-plan document.
PLAN_SCHEMA = "repro.chaos.plan/v1"

#: Every known injection site and the actions it supports.
SITES: dict[str, tuple[str, ...]] = {
    "runtime.worker": ("raise", "crash", "hang"),
    "runtime.result": ("poison", "lost"),
    "milp.solve": ("error", "infeasible", "timeout"),
    "jobstore.event": ("torn",),
    "jobstore.checkpoint": ("torn",),
    "fs.fsync": ("fail",),
    "shard.plan": ("stale",),
    "barrier": ("raise", "kill"),
}

_RULE_KEYS = frozenset(
    (
        "site",
        "action",
        "nth",
        "every",
        "probability",
        "match",
        "span",
        "seconds",
        "max_fires",
        "on_retry",
    )
)

_PLAN_KEYS = frozenset(("schema", "seed", "faults", "run"))


class ChaosPlanError(ValueError):
    """A fault plan is malformed; the message is one actionable line."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *where* (site + filters) and *when*.

    Exactly which calls fire is decided by the trigger predicates:

    * ``nth`` — fire on the nth matching call (1-based);
    * ``every`` — fire on every k-th matching call;
    * ``probability`` — fire with this seeded per-call probability
      (deterministic: the controller derives one RNG per rule from
      the plan seed);
    * ``match`` — only calls whose name contains this substring count;
    * ``span`` — only calls made while a span with this name is open
      on the calling thread count (see :mod:`repro.obs.trace`).

    ``max_fires`` caps total fires (0 = unlimited); ``seconds`` sizes
    a ``hang``; ``on_retry`` opts a per-window rule into also arming
    retry attempts — off by default, which makes every per-window
    fault transient by construction (the retry runs clean, so the
    placement converges byte-identically to the clean run).
    """

    site: str
    action: str
    nth: int = 0
    every: int = 0
    probability: float = 0.0
    match: str = ""
    span: str = ""
    seconds: float = 30.0
    max_fires: int = 0
    on_retry: bool = False

    def validate(self) -> None:
        if self.site not in SITES:
            raise ChaosPlanError(
                f"unknown site {self.site!r}; known sites: "
                f"{', '.join(sorted(SITES))}"
            )
        if self.action not in SITES[self.site]:
            raise ChaosPlanError(
                f"site {self.site!r} does not support action "
                f"{self.action!r}; supported: "
                f"{', '.join(SITES[self.site])}"
            )
        if not (self.nth or self.every or self.probability):
            raise ChaosPlanError(
                f"rule for {self.site!r} has no trigger; set one of "
                f"nth, every, probability"
            )
        if self.nth < 0 or self.every < 0:
            raise ChaosPlanError(
                f"rule for {self.site!r}: nth/every must be >= 1 "
                f"when set"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ChaosPlanError(
                f"rule for {self.site!r}: probability must be in "
                f"[0, 1], got {self.probability}"
            )
        if self.seconds <= 0:
            raise ChaosPlanError(
                f"rule for {self.site!r}: seconds must be > 0"
            )
        if self.max_fires < 0:
            raise ChaosPlanError(
                f"rule for {self.site!r}: max_fires must be >= 0"
            )

    def to_dict(self) -> dict:
        doc: dict = {"site": self.site, "action": self.action}
        defaults = FaultRule(site=self.site, action=self.action)
        for key in (
            "nth",
            "every",
            "probability",
            "match",
            "span",
            "seconds",
            "max_fires",
            "on_retry",
        ):
            value = getattr(self, key)
            if value != getattr(defaults, key):
                doc[key] = value
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultRule":
        if not isinstance(doc, dict):
            raise ChaosPlanError(
                f"each fault must be an object, got {type(doc).__name__}"
            )
        unknown = set(doc) - _RULE_KEYS
        if unknown:
            raise ChaosPlanError(
                f"unknown fault key(s) {sorted(unknown)}; known keys: "
                f"{sorted(_RULE_KEYS)}"
            )
        if "site" not in doc or "action" not in doc:
            raise ChaosPlanError(
                "every fault needs both 'site' and 'action'"
            )
        try:
            rule = cls(
                site=str(doc["site"]),
                action=str(doc["action"]),
                nth=int(doc.get("nth", 0)),
                every=int(doc.get("every", 0)),
                probability=float(doc.get("probability", 0.0)),
                match=str(doc.get("match", "")),
                span=str(doc.get("span", "")),
                seconds=float(doc.get("seconds", 30.0)),
                max_fires=int(doc.get("max_fires", 0)),
                on_retry=bool(doc.get("on_retry", False)),
            )
        except (TypeError, ValueError) as exc:
            raise ChaosPlanError(
                f"bad fault field value: {exc}"
            ) from None
        rule.validate()
        return rule


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered list of :class:`FaultRule`.

    ``run`` carries optional execution hints for the chaos runner
    (``executor``/``jobs``/``profile``/``scale``) so a plan that only
    makes sense under a particular executor — e.g. a poisoned pickle
    needs a process boundary — stays self-contained.
    """

    seed: int = 0
    faults: tuple[FaultRule, ...] = ()
    run: dict = field(default_factory=dict)

    def validate(self) -> None:
        if not self.faults:
            raise ChaosPlanError("plan has no faults")
        for rule in self.faults:
            rule.validate()

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=int(seed))

    def to_dict(self) -> dict:
        doc: dict = {
            "schema": PLAN_SCHEMA,
            "seed": self.seed,
            "faults": [rule.to_dict() for rule in self.faults],
        }
        if self.run:
            doc["run"] = dict(self.run)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise ChaosPlanError(
                f"plan must be a JSON object, got {type(doc).__name__}"
            )
        schema = doc.get("schema")
        if schema != PLAN_SCHEMA:
            raise ChaosPlanError(
                f"unsupported plan schema {schema!r} "
                f"(expected {PLAN_SCHEMA!r})"
            )
        unknown = set(doc) - _PLAN_KEYS
        if unknown:
            raise ChaosPlanError(
                f"unknown plan key(s) {sorted(unknown)}; known keys: "
                f"{sorted(_PLAN_KEYS)}"
            )
        faults_doc = doc.get("faults")
        if not isinstance(faults_doc, list) or not faults_doc:
            raise ChaosPlanError(
                "'faults' must be a non-empty list of rules"
            )
        run = doc.get("run", {})
        if not isinstance(run, dict):
            raise ChaosPlanError("'run' must be an object of hints")
        try:
            seed = int(doc.get("seed", 0))
        except (TypeError, ValueError):
            raise ChaosPlanError("'seed' must be an integer") from None
        plan = cls(
            seed=seed,
            faults=tuple(
                FaultRule.from_dict(rule) for rule in faults_doc
            ),
            run=dict(run),
        )
        plan.validate()
        return plan

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=1) + "\n"

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ChaosPlanError(f"not valid JSON: {exc}") from None
        return cls.from_dict(doc)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.dumps())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.loads(Path(path).read_text())
