#!/usr/bin/env python
"""ECO-style DEF round trip.

A production deployment of the paper's optimizer sits between two
commercial tool invocations: read the routed design (DEF), perturb
placement, write DEF back, and let the router ECO-route.  This
example demonstrates that boundary with this repository's LEF/DEF
subset:

1. generate + place a design,
2. write `pre.def`, run VM1Opt, write `post.def`,
3. reload `post.def` onto a *fresh* copy of the design (as the
   downstream tool would) and verify the placements and metrics
   match.

Run:  python examples/eco_def_roundtrip.py
"""

from pathlib import Path

from repro.core import OptParams, ParamSet, vm1_opt
from repro.lefdef import apply_def_placement, write_def, write_lef
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter
from repro.tech import CellArchitecture, make_tech


def main() -> None:
    out = Path(__file__).parent
    tech = make_tech(CellArchitecture.CLOSED_M1)
    library = build_library(tech)
    design = generate_design("m0", tech, library, scale=0.03, seed=2)
    place_design(design, seed=1)

    (out / "m0.lef").write_text(write_lef(library))
    pre_def = write_def(design)
    (out / "m0_pre.def").write_text(pre_def)
    init = DetailedRouter(design).route()
    print(f"pre-opt : RWL {init.routed_wirelength / 1000:.0f} um, "
          f"#dM1 {init.num_dm1}")

    params = OptParams.for_arch(
        tech.arch, sequence=(ParamSet.square(1.0, 3, 1),),
        time_limit=3.0, theta=0.03,
    )
    vm1_opt(design, params)
    post_def = write_def(design)
    (out / "m0_post.def").write_text(post_def)
    opt = DetailedRouter(design).route()
    print(f"post-opt: RWL {opt.routed_wirelength / 1000:.0f} um, "
          f"#dM1 {opt.num_dm1}")

    # Downstream tool: fresh database, load the optimized DEF.
    fresh = generate_design("m0", tech, library, scale=0.03, seed=2)
    place_design(fresh, seed=1)
    moved = apply_def_placement(fresh, post_def)
    reloaded = DetailedRouter(fresh).route()
    print(f"reloaded: RWL {reloaded.routed_wirelength / 1000:.0f} um, "
          f"#dM1 {reloaded.num_dm1}  ({moved} placements applied)")

    assert reloaded.routed_wirelength == opt.routed_wirelength
    assert reloaded.num_dm1 == opt.num_dm1
    print("\nDEF round trip exact: the optimized placement survives "
          "the interchange boundary.")
    print(f"wrote {out / 'm0.lef'}, {out / 'm0_pre.def'}, "
          f"{out / 'm0_post.def'}")


if __name__ == "__main__":
    main()
