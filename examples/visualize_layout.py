#!/usr/bin/env python
"""Render before/after layouts and routing views as SVG.

Produces four files next to this script:

* ``layout_init.svg`` / ``layout_opt.svg`` — placements (cells
  colored by function; diagonal slash = flipped cell).
* ``routes_init.svg`` / ``routes_opt.svg`` — direct vertical M1
  routes (green), jogged near-miss M1 routes (orange) and congestion
  overflow (red).  After optimization the green count multiplies and
  the orange/red content shrinks — the paper's story in one picture.

Run:  python examples/visualize_layout.py
"""

from pathlib import Path

from repro.core import OptParams, ParamSet, vm1_opt
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.routing import DetailedRouter
from repro.tech import CellArchitecture, make_tech
from repro.viz import render_design_svg, render_routes_svg


def main() -> None:
    out = Path(__file__).parent
    tech = make_tech(CellArchitecture.CLOSED_M1)
    library = build_library(tech)
    design = generate_design(
        "aes", tech, library, scale=0.02, seed=3, utilization=0.8
    )
    place_design(design, seed=1)

    router = DetailedRouter(design)
    init = router.route()
    (out / "layout_init.svg").write_text(render_design_svg(design))
    (out / "routes_init.svg").write_text(
        render_routes_svg(design, router)
    )

    params = OptParams.for_arch(
        tech.arch, sequence=(ParamSet.square(1.2, 4, 1),),
        time_limit=4.0, theta=0.02,
    )
    vm1_opt(design, params)

    router_opt = DetailedRouter(design)
    final = router_opt.route()
    (out / "layout_opt.svg").write_text(render_design_svg(design))
    (out / "routes_opt.svg").write_text(
        render_routes_svg(design, router_opt)
    )

    print(f"#dM1 {init.num_dm1} -> {final.num_dm1}, "
          f"jogs {init.num_jog_m1} -> {final.num_jog_m1}, "
          f"DRVs {init.num_drvs} -> {final.num_drvs}")
    for name in ("layout_init", "routes_init", "layout_opt",
                 "routes_opt"):
        print(f"wrote {out / (name + '.svg')}")


if __name__ == "__main__":
    main()
