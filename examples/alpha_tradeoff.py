#!/usr/bin/env python
"""Explore the α tradeoff on a small design (the paper's Figure 6).

α prices one pin alignment in HPWL units: the MILP accepts up to α
DBU of HPWL growth to gain one more direct-vertical-M1 opportunity.
This example sweeps α and prints an ASCII chart of routed wirelength
and #dM1, reproducing the non-monotonic RWL shape the paper uses to
pick α = 1200.

Run:  python examples/alpha_tradeoff.py
"""

from repro.eval import EvalScale, expt_a2_alpha_sweep


def spark(values, width=40) -> list[str]:
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return ["#" * (1 + int((v - lo) / span * (width - 1))) for v in values]


def main() -> None:
    scale = EvalScale.quick()
    rows = expt_a2_alpha_sweep(
        scale, alphas=(0.0, 300.0, 1200.0, 3000.0, 6000.0)
    )
    print(f"{'alpha':>8s} {'RWL (um)':>10s} {'#dM1':>6s}")
    for row in rows:
        print(
            f"{str(row['alpha']):>8s} {row['RWL (um)']:>10.1f} "
            f"{row['#dM1']:>6d}"
        )

    swept = rows[1:]
    print("\nRWL (lower is better):")
    for row, bar in zip(swept, spark([r["RWL (um)"] for r in swept])):
        print(f"  a={str(row['alpha']):>6s} |{bar}")
    print("\n#dM1 (higher means more direct vertical M1 routes):")
    for row, bar in zip(swept, spark([r["#dM1"] for r in swept])):
        print(f"  a={str(row['alpha']):>6s} |{bar}")
    print(
        "\nNote the paper's observation: #dM1 keeps rising with alpha,"
        "\nbut RWL bottoms out at a moderate alpha — maximizing"
        "\nalignments is not the same as minimizing wirelength."
    )


if __name__ == "__main__":
    main()
