#!/usr/bin/env python
"""Render library cells as ASCII layouts (the paper's Figure 1).

Draws the pin geometry of a macro under each of the three cell
architectures, making the architectural contrast visible: vertical M1
stripes (ClosedM1), horizontal M0 bars (OpenM1), and M1 rails plus
horizontal pins (conventional 12-track).

Also writes the generated libraries to LEF next to this script.

Run:  python examples/cell_gallery.py [MACRO_NAME]
"""

import sys
from pathlib import Path

from repro.lefdef import write_lef
from repro.library import build_library
from repro.tech import CellArchitecture, make_tech

#: ASCII canvas resolution, in DBU per character cell.
X_STEP = 18
Y_STEP = 27


def render(macro, tech) -> str:
    width_chars = macro.width // X_STEP + 1
    height_chars = macro.height // Y_STEP + 1
    canvas = [
        [" "] * width_chars for _ in range(height_chars)
    ]
    for pin_name, pin in sorted(macro.pins.items()):
        symbol = pin_name[0].lower() if pin.direction.value in (
            "POWER", "GROUND"
        ) else pin_name[0].upper()
        for shape in pin.shapes:
            r = shape.rect
            for y in range(r.ylo // Y_STEP, min(r.yhi // Y_STEP + 1,
                                                height_chars)):
                for x in range(r.xlo // X_STEP,
                               min(r.xhi // X_STEP + 1, width_chars)):
                    canvas[y][x] = symbol
    rows = ["".join(row) for row in reversed(canvas)]
    border = "+" + "-" * width_chars + "+"
    body = "\n".join("|" + row + "|" for row in rows)
    return f"{border}\n{body}\n{border}"


def main() -> None:
    base_name = sys.argv[1] if len(sys.argv) > 1 else "NAND2_X1_RVT"
    out_dir = Path(__file__).parent
    for arch in CellArchitecture:
        tech = make_tech(arch)
        library = build_library(tech)
        macro = library.macro(base_name)
        print(f"\n=== {base_name} / {arch.value} "
              f"({macro.width_sites} sites x {tech.row_height} nm, "
              f"pins on M{arch.pin_layer_index}) ===")
        print(render(macro, tech))
        blocked = sorted(macro.m1_blocked_columns)
        print(f"M1-blocked columns: {blocked if blocked else 'none'}")
        lef_path = out_dir / f"library_{arch.value}.lef"
        lef_path.write_text(write_lef(library))
        print(f"wrote {lef_path.name}")


if __name__ == "__main__":
    main()
