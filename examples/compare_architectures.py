#!/usr/bin/env python
"""Compare the three cell architectures on the same workload.

The paper's core claim (§1, §5) is that the benefit of vertical-M1-
aware placement depends on the cell architecture: ClosedM1 gains the
most (direct M1 routes are free), OpenM1 gains moderately (M1 is open
but direct routes can block pin access), and the conventional
12-track template cannot use inter-row M1 at all.

This example runs the identical netlist profile under each template
and prints the resulting contrast.

Run:  python examples/compare_architectures.py
"""

from repro.flow import FlowConfig, run_flow
from repro.tech import CellArchitecture


def run_one(arch: CellArchitecture):
    config = FlowConfig(
        profile="aes",
        arch=arch,
        scale=0.025,
        seed=1,
        window_um=1.25,
        time_limit=4.0,
        # The conventional template has no alignment objective, so
        # skip its (pointless) optimization and report route-only.
        optimize=arch.supports_direct_m1,
    )
    return run_flow(config)


def main() -> None:
    print("arch       #dM1 init -> final    RWL change    #via12 change")
    for arch in (
        CellArchitecture.CONV_12T,
        CellArchitecture.CLOSED_M1,
        CellArchitecture.OPEN_M1,
    ):
        result = run_one(arch)
        init = result.init_route
        if result.final_route is None:
            print(
                f"{arch.value:<11s}{init.num_dm1:>5d}   (no inter-row"
                " M1: optimization not applicable)"
            )
            continue
        final = result.final_route
        rwl = 100 * (
            final.routed_wirelength - init.routed_wirelength
        ) / init.routed_wirelength
        via = 100 * (final.num_via12 - init.num_via12) / init.num_via12
        print(
            f"{arch.value:<11s}{init.num_dm1:>5d} -> {final.num_dm1:<8d}"
            f"{rwl:>8.1f}%    {via:>8.1f}%"
        )
    print(
        "\nExpected contrast (paper Table 2): ClosedM1 multiplies #dM1"
        "\nseveral-fold and wins the most RWL/via12; OpenM1 improves"
        "\nmodestly; conventional cells cannot route M1 between rows."
    )


if __name__ == "__main__":
    main()
