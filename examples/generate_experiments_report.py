#!/usr/bin/env python
"""Assemble EXPERIMENTS.md from saved benchmark results.

Run the benchmark suite first (it saves row dumps under
``benchmarks/results/``):

    pytest benchmarks/ --benchmark-only

then:

    python examples/generate_experiments_report.py

The report records, for every table and figure of the paper, the
paper's reported numbers/trends next to this reproduction's measured
rows, plus a computed shape verdict.
"""

from __future__ import annotations

import json
from datetime import date
from pathlib import Path

from repro.eval import render_markdown_table

RESULTS = Path(__file__).parent.parent / "benchmarks" / "results"
OUTPUT = Path(__file__).parent.parent / "EXPERIMENTS.md"


def load(name: str) -> list[dict] | None:
    path = RESULTS / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def verdict(ok: bool) -> str:
    return "**reproduced**" if ok else "**NOT reproduced**"


def section_fig5(out: list[str]) -> None:
    rows = load("fig5_window_sweep")
    out.append("## Figure 5 — window size / perturbation scalability\n")
    out.append(
        "Paper: routed wirelength decreases as the window grows; "
        "runtime increases sharply (5x at 40 um); the knee rule "
        "(<= 1% RWL of best, minimum runtime) picks (20 um, lx=4, "
        "ly=1).\n"
    )
    if rows is None:
        out.append("_No saved results; run the fig5 benchmark._\n")
        return
    by_size: dict = {}
    for row in rows:
        by_size.setdefault(row["window (paper um)"], []).append(row)
    sizes = sorted(by_size)
    rwl = {
        s: sum(r["RWL (um)"] for r in by_size[s]) / len(by_size[s])
        for s in sizes
    }
    rt = {
        s: sum(r["runtime (s)"] for r in by_size[s]) / len(by_size[s])
        for s in sizes
    }
    ok_rwl = rwl[sizes[-1]] <= rwl[sizes[0]] * 1.002
    ok_rt = rt[sizes[-1]] > 1.5 * rt[sizes[0]]
    out.append(render_markdown_table(rows))
    out.append(
        f"- Larger windows give better-or-equal RWL: {verdict(ok_rwl)}"
        f" (mean RWL {rwl[sizes[0]]:.0f} -> {rwl[sizes[-1]]:.0f} um)\n"
        f"- Runtime grows superlinearly with window size: "
        f"{verdict(ok_rt)} ({rt[sizes[-1]] / max(rt[sizes[0]], 1e-9):.1f}x"
        f" from {sizes[0]:g} to {sizes[-1]:g} um-equivalent)\n"
    )


def section_fig6(out: list[str]) -> None:
    rows = load("fig6_alpha_sweep")
    out.append("## Figure 6 — α sensitivity (RWL and #dM1)\n")
    out.append(
        "Paper: #dM1 increases with α; RWL is non-monotonic in α "
        "(maximizing alignments is not minimizing wirelength); "
        "α = 1200 selected for ClosedM1.\n"
    )
    if rows is None:
        out.append("_No saved results; run the fig6 benchmark._\n")
        return
    out.append(render_markdown_table(rows))
    init, swept = rows[0], rows[1:]
    dm1 = [r["#dM1"] for r in swept]
    ok_dm1 = dm1[-1] >= dm1[0] and dm1[-1] > 2 * max(init["#dM1"], 1)
    ok_gain = all(
        r["RWL (um)"] < init["RWL (um)"] for r in swept[1:]
    )
    positive = [r for r in swept if float(r["alpha"]) > 0]
    rwls = [r["RWL (um)"] for r in positive]
    dm1s = [r["#dM1"] for r in positive]
    ok_decouple = (
        max(dm1s) >= 1.8 * max(min(dm1s), 1)
        and (max(rwls) - min(rwls)) <= 0.03 * (sum(rwls) / len(rwls))
    )
    non_monotone = any(
        b["RWL (um)"] > a["RWL (um)"]
        for a, b in zip(positive, positive[1:])
    )
    out.append(
        f"- #dM1 rises with α: {verdict(ok_dm1)}\n"
        f"- Positive α beats the initial routing: {verdict(ok_gain)}\n"
        f"- More alignment ≠ proportionally less wirelength (#dM1 "
        f"scales ≥1.8x while RWL stays within a 3% band): "
        f"{verdict(ok_decouple)}"
        + (
            " — RWL is visibly non-monotonic in α, as in the paper\n"
            if non_monotone
            else "\n"
        )
    )


def section_fig7(out: list[str]) -> None:
    rows = load("fig7_sequences")
    out.append("## Figure 7 — optimization sequences\n")
    out.append(
        "Paper: sequences with lx = 4 give the best RWL; sequence 2 "
        "costs about 2x sequence 1's runtime, so the single-set "
        "(20, 4, 1) sequence is preferred.\n"
    )
    if rows is None:
        out.append("_No saved results; run the fig7 benchmark._\n")
        return
    out.append(render_markdown_table(rows))
    by_id = {r["sequence"]: r for r in rows}
    best = min(r["RWL (um)"] for r in rows)
    ok_q = by_id[1]["RWL (um)"] <= best * 1.01
    ok_extra = all(
        row["RWL (um)"] >= by_id[1]["RWL (um)"] * 0.99
        for seq_id, row in by_id.items()
        if seq_id != 1
    )
    out.append(
        f"- Sequence 1 within 1% of best RWL: {verdict(ok_q)}\n"
        f"- Multi-set sequences buy no quality over sequence 1: "
        f"{verdict(ok_extra)}\n"
        "- Known deviation: the paper's 2x *runtime* penalty for "
        "sequence 2 does not reproduce at this compressed window "
        "scale — tiny early windows are both fast and weak here, so "
        "the runtime ordering is scale-dependent (quality ordering, "
        "which drives the paper's conclusion, does reproduce).\n"
    )


_TABLE2_PAPER = {
    "closedm1": (
        "Paper (ClosedM1): #dM1 x4.0-4.6, M1 WL -7.0..-26.8%, "
        "#via12 -5.7..-14.4%, HPWL -5.0..+4.0%, RWL -1.1..-6.4%, "
        "WNS ~0, power -0.1..-0.9%."
    ),
    "openm1": (
        "Paper (OpenM1): #dM1 +47..70%, M1 WL -0.5..+3.0%, "
        "#via12 -1.7..-4.1%, HPWL -0.8..-2.2%, RWL -0.8..-2.2%, "
        "WNS ~0, power -0.1..-0.3%."
    ),
}


def section_table2(out: list[str], arch: str) -> None:
    rows = load(f"table2_{arch}")
    out.append(f"## Table 2 ({arch}) — full-flow results\n")
    out.append(_TABLE2_PAPER[arch] + "\n")
    if rows is None:
        out.append("_No saved results; run the table2 benchmark._\n")
        return
    from repro.eval.paper_reference import paper_row

    keep = (
        "design", "#inst", "#dM1 init", "#dM1 final", "M1WL %",
        "#via12 %", "HPWL %", "RWL %", "WNS final (ns)", "power %",
        "#DRV init", "#DRV final", "runtime (s)",
    )
    slim = []
    for r in rows:
        slim.append(dict({"source": "ours"}, **{k: r[k] for k in keep}))
        ref = dict(paper_row(arch, r["design"]))
        ref_row = {"source": "paper", "design": r["design"]}
        for k in keep[1:]:
            ref_row[k] = ref.get(k, "-")
        slim.append(ref_row)
    out.append(render_markdown_table(slim))
    if arch == "closedm1":
        ok = all(
            r["#dM1 final"] > 2 * max(r["#dM1 init"], 1)
            and r["RWL %"] < 0
            and r["#via12 %"] < 0
            for r in rows
        )
        out.append(
            f"- #dM1 multiplies, RWL and #via12 drop on every design: "
            f"{verdict(ok)} (our exact-alignment baseline is rarer "
            "than the paper's, so the #dM1 multiplier overshoots "
            "the paper's ~4.5x)\n"
        )
    else:
        ok = all(
            r["#dM1 final"] > r["#dM1 init"] and r["RWL %"] <= 0.2
            for r in rows
        )
        out.append(
            f"- #dM1 grows modestly and RWL improves slightly: "
            f"{verdict(ok)}\n"
        )
    closed = load("table2_closedm1")
    opened = load("table2_openm1")
    if arch == "openm1" and closed and opened:
        contrast = all(
            (c["#dM1 final"] / max(c["#dM1 init"], 1))
            > (o["#dM1 final"] / max(o["#dM1 init"], 1))
            for c, o in zip(closed, opened)
        )
        out.append(
            f"- ClosedM1 gains >> OpenM1 gains (the paper's headline "
            f"contrast): {verdict(contrast)}\n"
        )


def section_fig8(out: list[str]) -> None:
    rows = load("fig8_drv_sweep")
    out.append("## Figure 8 — DRVs vs utilization (aes, ClosedM1)\n")
    out.append(
        "Paper: raising initial utilization induces congestion DRVs; "
        "the optimizer consistently removes a substantial fraction "
        "(DRV counts are not perfectly monotonic in utilization — "
        "initial placement quality dominates).\n"
    )
    if rows is None:
        out.append("_No saved results; run the fig8 benchmark._\n")
        return
    out.append(render_markdown_table(rows))
    total_orig = sum(r["#DRVs orig"] for r in rows)
    total_opt = sum(r["#DRVs opt"] for r in rows)
    ok = total_opt < total_orig and all(
        r["#DRVs opt"] <= r["#DRVs orig"] for r in rows
    )
    out.append(
        f"- Optimization reduces DRVs at every utilization "
        f"({total_orig} -> {total_opt} total): {verdict(ok)}\n"
    )


def section_baseline(out: list[str]) -> None:
    rows = load("baseline_contrast")
    out.append("## §2 contrast — single-row DP baseline vs VM1Opt\n")
    out.append(
        "Paper (related work): DP/graph single-row placers optimize "
        "wirelength efficiently but cannot express inter-row vertical "
        "M1 alignment; that limitation motivates the MILP.\n"
    )
    if rows is None:
        out.append("_No saved results; run the baseline benchmark._\n")
        return
    out.append(render_markdown_table(rows))
    init, dp, milp = rows
    ok = (
        dp["HPWL (um)"] < init["HPWL (um)"]
        and milp["#dM1 routed"] > 2 * max(dp["#dM1 routed"], 1)
    )
    out.append(
        f"- DP improves HPWL but VM1Opt banks multiples of its dM1 "
        f"count: {verdict(ok)}\n"
    )


def section_ablations(out: list[str]) -> None:
    out.append("## Ablations (design choices)\n")
    meta = load("ablation_metaheuristic")
    if meta:
        out.append("**Metaheuristic passes** (Algorithm 1):\n")
        out.append(render_markdown_table(meta))
        by = {r["variant"]: r for r in meta}
        ok = by["full"]["objective"] <= min(
            by["no-flip"]["objective"], by["no-shift"]["objective"]
        ) + 1e-6
        out.append(
            f"- Both the flip pass and window shifting contribute: "
            f"{verdict(ok)}\n"
        )
    jogs = load("ablation_jogs")
    if jogs:
        out.append("**Jogged-M1 route modeling** (router stage 1):\n")
        out.append(render_markdown_table(jogs))
    timing = load("ablation_timing_driven")
    if timing:
        out.append(
            "**Timing-criticality β (§6 future work (ii))** under a "
            "stressed clock:\n"
        )
        out.append(render_markdown_table(timing))
        uniform, weighted = timing
        ok = weighted["WNS (ps)"] >= uniform["WNS (ps)"] - 10.0
        out.append(
            f"- Criticality weighting does not hurt WNS: {verdict(ok)}\n"
        )


def section_recharacterization(out: list[str]) -> None:
    rows = load("recharacterization")
    out.append("## §6 study — pin-extension recharacterization\n")
    out.append(
        "Paper: extending an INV pin by 32 nm (ASAP7, Calibre xRC + "
        "HSPICE) changes delay/slew by <= 0.1 ps, so standard library "
        "models remain valid for dM1-landed pins.\n"
    )
    if rows is None:
        out.append("_No saved results; run the benchmark._\n")
        return
    worst = max(abs(r["delay delta (ps)"]) for r in rows)
    ok = all(r["negligible"] for r in rows)
    out.append(
        f"Measured (analytic RC model over the whole {len(rows)}-cell "
        f"library): worst delay delta {worst * 1000:.2f} fs.  "
        f"Claim holds: {verdict(ok)}\n"
    )


def main() -> None:
    out: list[str] = [
        "# EXPERIMENTS — paper vs. this reproduction\n",
        f"Generated {date.today().isoformat()} from "
        "`benchmarks/results/*.json` (produced by "
        "`pytest benchmarks/ --benchmark-only`).\n",
        "Absolute numbers are not comparable to the paper's — the "
        "substrate here is a Python router/placer on scaled synthetic "
        "designs, not Innovus on full-size netlists (see DESIGN.md "
        "§2).  What is compared is every *trend* the paper reports: "
        "who wins, in which direction, and where the knees fall.\n",
    ]
    section_fig5(out)
    section_fig6(out)
    section_fig7(out)
    section_table2(out, "closedm1")
    section_table2(out, "openm1")
    section_fig8(out)
    section_recharacterization(out)
    section_baseline(out)
    section_ablations(out)
    OUTPUT.write_text("\n".join(out))
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
