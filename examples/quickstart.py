#!/usr/bin/env python
"""Quickstart: the full flow on one small ClosedM1 design.

Generates a scaled `aes` benchmark, places it, routes it, runs the
paper's MILP-based vertical-M1-aware detailed placement (VM1Opt), and
prints the before/after Table 2-style metrics.

Run:  python examples/quickstart.py
"""

from repro.flow import FlowConfig, run_flow, table2_row
from repro.tech import CellArchitecture


def main() -> None:
    config = FlowConfig(
        profile="aes",
        arch=CellArchitecture.CLOSED_M1,
        scale=0.03,        # ~370 instances; raise toward 1.0 for the
                           # paper-size run (needs hours)
        utilization=0.75,
        seed=1,
        window_um=1.25,    # optimization window (paper uses 20 um on
                           # full-size designs)
        lx=4,              # max x displacement, sites
        ly=1,              # max y displacement, rows
        time_limit=4.0,    # per-window MILP limit, seconds
    )
    print(f"Running flow: {config.profile} / {config.arch.value} ...")
    result = run_flow(config)

    init, final = result.init_route, result.final_route
    print(f"\ndesign: {result.design.name}")
    print(f"instances: {result.num_instances}")
    print(f"die: {result.design.tech.microns(result.design.die.width):.1f}"
          f" x {result.design.tech.microns(result.design.die.height):.1f}"
          " um")
    print(f"optimizer: {result.opt.iterations} iterations, "
          f"{result.opt.moved_cells} cell moves, "
          f"{result.opt.wall_seconds:.1f}s wall "
          f"({result.opt.modeled_parallel_seconds:.1f}s parallel-model)")

    print("\n  metric            init      final     change")
    rows = [
        ("#dM1", init.num_dm1, final.num_dm1),
        ("RWL (um)", init.routed_wirelength / 1000,
         final.routed_wirelength / 1000),
        ("HPWL (um)", init.hpwl / 1000, final.hpwl / 1000),
        ("M1 WL (um)", init.m1_wirelength / 1000,
         final.m1_wirelength / 1000),
        ("#via12", init.num_via12, final.num_via12),
        ("#DRVs", init.num_drvs, final.num_drvs),
        ("WNS (ns)", result.init_timing.wns_ns,
         result.final_timing.wns_ns),
        ("power (mW)", result.init_power.total_mw,
         result.final_power.total_mw),
    ]
    for name, a, b in rows:
        if isinstance(a, int):
            change = f"{(b - a):+d}"
            print(f"  {name:<16s}{a:>10d}{b:>10d}     {change}")
        else:
            change = f"{100 * (b - a) / a:+.1f}%" if a else "n/a"
            print(f"  {name:<16s}{a:>10.2f}{b:>10.2f}     {change}")

    row = table2_row(result)
    print(f"\nTable 2-style deltas: RWL {row['RWL %']:+.1f}%  "
          f"#via12 {row['#via12 %']:+.1f}%  "
          f"#dM1 x{row['#dM1 final'] / max(row['#dM1 init'], 1):.1f}")


if __name__ == "__main__":
    main()
