#!/usr/bin/env python
"""Quickstart: the full flow on one small ClosedM1 design.

Generates a scaled `aes` benchmark, places it, routes it, runs the
paper's MILP-based vertical-M1-aware detailed placement (VM1Opt), and
prints the before/after Table 2-style metrics.

Run:  python examples/quickstart.py [--jobs N] [--executor KIND]

``--jobs 2`` dispatches the window MILPs over a two-worker process
pool (see ``repro.runtime``); the placement is identical to the
serial run by construction.
"""

import argparse

from repro.flow import FlowConfig, run_flow, table2_row
from repro.runtime import EXECUTOR_KINDS
from repro.tech import CellArchitecture


def main() -> None:
    cli = argparse.ArgumentParser(description=__doc__)
    cli.add_argument(
        "--jobs", type=int, default=1,
        help="window-solve workers (1 = serial)",
    )
    cli.add_argument(
        "--executor", default="auto", choices=EXECUTOR_KINDS,
        help="window-solve executor backend",
    )
    cli.add_argument(
        "--scale", type=float, default=0.03,
        help="instance-count scale (1.0 = paper size)",
    )
    args = cli.parse_args()

    config = FlowConfig(
        profile="aes",
        arch=CellArchitecture.CLOSED_M1,
        scale=args.scale,  # 0.03 ~= 370 instances; raise toward 1.0
                           # for the paper-size run (needs hours)
        utilization=0.75,
        seed=1,
        window_um=1.25,    # optimization window (paper uses 20 um on
                           # full-size designs)
        lx=4,              # max x displacement, sites
        ly=1,              # max y displacement, rows
        time_limit=4.0,    # per-window MILP limit, seconds
        executor=args.executor,
        jobs=args.jobs,
    )
    print(f"Running flow: {config.profile} / {config.arch.value} "
          f"(executor={config.executor}, jobs={config.jobs}) ...")
    result = run_flow(config)

    init, final = result.init_route, result.final_route
    print(f"\ndesign: {result.design.name}")
    print(f"instances: {result.num_instances}")
    print(f"die: {result.design.tech.microns(result.design.die.width):.1f}"
          f" x {result.design.tech.microns(result.design.die.height):.1f}"
          " um")
    print(f"optimizer: {result.opt.iterations} iterations, "
          f"{result.opt.moved_cells} cell moves, "
          f"{result.opt.wall_seconds:.1f}s wall "
          f"({result.opt.measured_parallel_seconds:.1f}s solve phase, "
          f"{result.opt.modeled_parallel_seconds:.1f}s parallel-model)")
    if result.telemetry is not None:
        summary = result.telemetry.summary()
        print(f"runtime: executor={summary['executor']} "
              f"jobs={summary['jobs']} "
              f"windows={summary['windows']['total']} "
              f"(failed={summary['windows']['failed']}, "
              f"timed out={summary['windows']['timed_out']})")

    print("\n  metric            init      final     change")
    rows = [
        ("#dM1", init.num_dm1, final.num_dm1),
        ("RWL (um)", init.routed_wirelength / 1000,
         final.routed_wirelength / 1000),
        ("HPWL (um)", init.hpwl / 1000, final.hpwl / 1000),
        ("M1 WL (um)", init.m1_wirelength / 1000,
         final.m1_wirelength / 1000),
        ("#via12", init.num_via12, final.num_via12),
        ("#DRVs", init.num_drvs, final.num_drvs),
        ("WNS (ns)", result.init_timing.wns_ns,
         result.final_timing.wns_ns),
        ("power (mW)", result.init_power.total_mw,
         result.final_power.total_mw),
    ]
    for name, a, b in rows:
        if isinstance(a, int):
            change = f"{(b - a):+d}"
            print(f"  {name:<16s}{a:>10d}{b:>10d}     {change}")
        else:
            change = f"{100 * (b - a) / a:+.1f}%" if a else "n/a"
            print(f"  {name:<16s}{a:>10.2f}{b:>10.2f}     {change}")

    row = table2_row(result)
    print(f"\nTable 2-style deltas: RWL {row['RWL %']:+.1f}%  "
          f"#via12 {row['#via12 %']:+.1f}%  "
          f"#dM1 x{row['#dM1 final'] / max(row['#dM1 init'], 1):.1f}")


if __name__ == "__main__":
    main()
