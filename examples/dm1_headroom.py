#!/usr/bin/env python
"""Audit the direct-vertical-M1 headroom of a placement.

Before spending MILP time, it is worth knowing how much alignment
opportunity a placement even has: how many same-net pin pairs sit
within the γ row span, how far apart they are in x, and what a given
perturbation budget could reach.  This drives the choice of lx (and
explains the paper's Figure 5/6 sensitivities).

Run:  python examples/dm1_headroom.py
"""

from repro.core import OptParams, ParamSet, vm1_opt
from repro.core.analysis import analyze_opportunities
from repro.library import build_library
from repro.netlist import generate_design
from repro.placement import place_design
from repro.tech import CellArchitecture, make_tech


def show(report, label):
    print(f"\n{label}:")
    print(f"  pin pairs within gamma rows : {report.pairs_in_span}")
    print(f"  realized alignments         : {report.realized} "
          f"({100 * report.realized_fraction:.1f}%)")
    print(f"  reachable with budget       : {report.reachable} "
          f"({100 * report.reachable_fraction:.1f}%)")
    print("  mismatch histogram (|dx| in sites -> pairs):")
    for sites in sorted(report.mismatch_histogram)[:10]:
        count = report.mismatch_histogram[sites]
        print(f"    {sites:>3d}: {'#' * min(count, 60)} {count}")


def main() -> None:
    tech = make_tech(CellArchitecture.CLOSED_M1)
    library = build_library(tech)
    design = generate_design("aes", tech, library, scale=0.02, seed=3)
    place_design(design, seed=1)
    params = OptParams.for_arch(
        tech.arch, sequence=(ParamSet.square(1.0, 4, 1),),
        time_limit=3.0, theta=0.03,
    )

    before = analyze_opportunities(design, params, budget_sites=4)
    show(before, "initial placement (budget lx=4)")

    vm1_opt(design, params)
    after = analyze_opportunities(design, params, budget_sites=4)
    show(after, "after VM1Opt")

    banked = after.realized - before.realized
    print(f"\nVM1Opt banked {banked} additional alignments "
          f"({before.realized} -> {after.realized}) out of "
          f"{before.reachable} reachable under the budget.")


if __name__ == "__main__":
    main()
